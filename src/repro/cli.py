"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``vectorize FILE.c``
    Compile a mini-C kernel file and vectorize every function in it;
    print the scalar IR, the emitted vector program, and model costs.

``describe INSTRUCTION``
    Run the offline pipeline for one target instruction and print its
    VIDL description and canonical matching patterns (Figure 4b/4c).

``targets``
    List available targets and their instruction counts.

``validate``
    Re-run the §6.1 random-testing validation over a target's ISA.

``lint``
    Run the ``repro.analysis`` sanitizer suite (IRLint, DataflowLint,
    VIDLLint, LaneSan, DepSan) over vectorization results — for a
    mini-C file, a bundled kernel, or every bundled kernel — and report
    diagnostics.

``verify``
    Run TransVal translation validation (``repro.analysis.transval``)
    over vectorization results: statically prove each emitted vector
    program equivalent to its scalar input, reporting per-goal proof
    status and exiting non-zero on any disproved goal.

``bench``
    Run the bundled kernel × target matrix with tracing and counters on;
    write the ``BENCH_vegen.json`` perf trajectory and (optionally)
    compare against an older trajectory, failing on cost regressions.

``serve``
    Run the long-lived asyncio compile server (``repro.serve``): JSON
    over HTTP, content-addressed result cache, hash-sharded worker
    pool, ``/metrics`` endpoint.

``gen``
    Run the offline generator phase for the whole spec inventory and
    serialize the generated vectorization utilities into a versioned
    JSON artifact (``repro.target.artifact``); ``--check`` verifies the
    committed artifact is present, fresh, and byte-identical to a
    regeneration.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.baseline import baseline_vectorize
from repro.frontend import compile_c
from repro.ir import print_function
from repro.target import available_targets, get_target
from repro.vectorizer import vectorize


def _cmd_vectorize(args: argparse.Namespace) -> int:
    from repro.session import VectorizationSession

    with open(args.file) as handle:
        source = handle.read()
    functions = compile_c(source)
    pipeline = None
    if args.passes:
        from repro.passes import available_passes, build_pipeline

        names = [n.strip() for n in args.passes.split(",") if n.strip()]
        try:
            pipeline = build_pipeline(names)
        except KeyError:
            unknown = [n for n in names if n not in available_passes()]
            print(f"unknown passes: {', '.join(unknown)}; available: "
                  f"{', '.join(available_passes())}", file=sys.stderr)
            return 2
    config = None
    if args.exact or args.bound != "matching":
        from repro.vectorizer.context import VectorizerConfig

        config = VectorizerConfig(beam_width=args.beam_width,
                                  exact=args.exact,
                                  exact_node_budget=args.exact_budget,
                                  bound=args.bound)
    session = VectorizationSession(
        target=args.target,
        beam_width=args.beam_width,
        reassociate=args.reassociate,
        pipeline=pipeline,
        config=config,
    )
    status = 0
    for fn in functions:
        if not args.emit_c:
            # Suppressed in emit mode so stdout is a compilable
            # translation unit (headers are include-guarded).
            print(f"=== {fn.name} ===")
        if args.dump_ir:
            print(print_function(fn))
            print()
        obs = {}
        if args.trace:
            from repro.obs import Counters, Tracer

            obs = {"tracer": Tracer(), "counters": Counters()}
        if args.exact and "counters" not in obs:
            from repro.obs import Counters

            obs["counters"] = Counters()
        result = session.vectorize(fn, **obs)
        if args.exact:
            counters = obs["counters"]
            nodes = counters.get("beam.exact_nodes")
            if counters.get("beam.exact_proved"):
                print(f"exact       : proved optimal "
                      f"({nodes} nodes explored)")
            else:
                print(f"exact       : node budget exhausted after "
                      f"{nodes} nodes (best incumbent, no proof)")
        if args.report or args.trace:
            from repro.vectorizer.report import render_report

            print(render_report(result))
            print()
        if args.emit_c:
            from repro.emit import EmitError

            try:
                print(result.c_source)
            except EmitError as exc:
                print(f"cannot emit C: {exc}", file=sys.stderr)
                status = 1
            continue
        print(result.program.dump())
        print(f"scalar cost : {result.scalar_cost:8.1f} model cycles")
        print(f"vector cost : {result.cost.total:8.1f} model cycles "
              f"({result.speedup_over_scalar:.2f}x)")
        if args.compare_baseline:
            llvm = baseline_vectorize(fn, target=args.target)
            print(f"llvm cost   : {llvm.cost.total:8.1f} model cycles "
                  f"(vegen is {llvm.cost.total / result.cost.total:.2f}x)")
        if not result.vectorized:
            status = max(status, 0)  # not an error; just informational
            print("(not vectorized: scalar code modeled cheapest)")
        print()
    return status


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.vidl import format_inst_desc

    target = get_target(args.target)
    try:
        inst = target.get(args.instruction)
    except KeyError:
        names = [n for n in target.by_name if args.instruction in n]
        print(f"unknown instruction {args.instruction!r}", file=sys.stderr)
        if names:
            print(f"did you mean: {', '.join(sorted(names)[:8])}",
                  file=sys.stderr)
        return 1
    print(f"# pseudocode semantics\n{inst.spec_text.strip()}\n")
    print("# lifted VIDL description (Figure 4b)")
    print(format_inst_desc(inst.desc))
    print("\n# canonical matching operations (Figure 4c)")
    for i, op in enumerate(dict.fromkeys(inst.match_ops)):
        print(f"  lane-op {i}: {op}")
    print(f"\ncost: {inst.cost} model cycles  |  SIMD: {inst.is_simd}  |  "
          f"requires: {', '.join(sorted(inst.requires)) or '-'}")
    return 0


def _cmd_targets(_args: argparse.Namespace) -> int:
    for name in available_targets():
        target = get_target(name)
        print(f"{name:14s} {len(target.instructions):4d} instructions, "
              f"{len(target.operation_index):3d} distinct operations")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.pseudocode import parse_spec, run_spec
    from repro.vidl import bits_from_lanes, execute_inst, lanes_from_bits

    target = get_target(args.target)
    rng = random.Random(args.seed)
    failures: List[str] = []
    for inst in target.instructions:
        spec = parse_spec(inst.spec_text)
        for _ in range(args.trials):
            env = {p.name: rng.getrandbits(p.total_width)
                   for p in spec.params}
            expected = run_spec(spec, env)
            lanes = [
                lanes_from_bits(env[p.name], p.lanes,
                                inst.desc.inputs[i].elem_type)
                for i, p in enumerate(spec.params)
            ]
            got = bits_from_lanes(execute_inst(inst.desc, lanes),
                                  inst.desc.out_elem_type)
            if got != expected:
                failures.append(inst.name)
                break
    total = len(target.instructions)
    print(f"validated {total - len(failures)}/{total} instructions "
          f"({args.trials} random trials each)")
    if failures:
        print("mismatches:", ", ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_result, errors_only
    from repro.kernels import all_kernels

    if args.file:
        functions = {}
        with open(args.file) as handle:
            source = handle.read()
        for fn in compile_c(source):
            functions[fn.name] = fn
    elif args.kernel:
        kernels = all_kernels()
        if args.kernel not in kernels:
            print(f"unknown kernel {args.kernel!r}; available: "
                  f"{', '.join(sorted(kernels))}", file=sys.stderr)
            return 2
        functions = {args.kernel: kernels[args.kernel]}
    elif args.all:
        functions = all_kernels()
    else:
        print("lint: give a FILE, --kernel NAME, or --all",
              file=sys.stderr)
        return 2

    if args.target == "all":
        targets = available_targets()
    else:
        targets = [args.target]

    checked = 0
    error_count = 0
    warning_count = 0
    for tname in targets:
        from repro.session import VectorizationSession

        target = get_target(tname)
        session = VectorizationSession(target=target,
                                       beam_width=args.beam_width)
        for fname, fn in functions.items():
            result = session.vectorize(fn)
            diagnostics = analyze_result(result, target=target)
            checked += 1
            errors = errors_only(diagnostics)
            error_count += len(errors)
            warning_count += len(diagnostics) - len(errors)
            for diag in diagnostics:
                print(f"{tname}/{fname}: {diag.format()}")
    print(f"linted {checked} function/target combinations: "
          f"{error_count} errors, {warning_count} warnings")
    return 1 if error_count else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.transval import (
        FAILED,
        SAMPLED,
        TransValConfig,
        validate_result,
    )
    from repro.kernels import all_kernels
    from repro.obs import Counters
    from repro.session import VectorizationSession

    if args.file:
        functions = {}
        with open(args.file) as handle:
            source = handle.read()
        for fn in compile_c(source):
            functions[fn.name] = fn
    elif args.kernel:
        kernels = all_kernels()
        functions = {}
        for name in args.kernel:
            if name not in kernels:
                print(f"unknown kernel {name!r}; available: "
                      f"{', '.join(sorted(kernels))}", file=sys.stderr)
                return 2
            functions[name] = kernels[name]
    elif args.all:
        functions = all_kernels()
    else:
        print("verify: give a FILE, --kernel NAME, or --all",
              file=sys.stderr)
        return 2

    if args.target == "all":
        targets = available_targets()
    else:
        targets = [args.target]

    config = TransValConfig(enum_bits=args.enum_bits)
    counters = Counters()
    cells = []
    checked = 0
    failed = 0
    sampled = 0
    for tname in targets:
        session = VectorizationSession(target=tname,
                                       beam_width=args.beam_width)
        for fname in sorted(functions):
            result = session.vectorize(functions[fname])
            report = validate_result(result, config=config,
                                     counters=counters)
            checked += 1
            counts = report.counts()
            if report.status == FAILED:
                failed += 1
            elif counts.get(SAMPLED):
                sampled += 1
            cell = report.as_dict()
            cell["target"] = tname
            cells.append(cell)
            if not args.quiet or report.status == FAILED:
                print(f"{tname}/{fname}: {report.status} "
                      f"({len(report.goals)} goals)")
            for diag in report.diagnostics():
                print(f"{tname}/{fname}: {diag.format()}")
    print(f"verified {checked} function/target combinations: "
          f"{checked - failed - sampled} proved, {sampled} sampled, "
          f"{failed} failed")
    if args.report:
        import json

        doc = {
            "schema": "repro-verify-report/v1",
            "cells": cells,
            "counters": {k: v for k, v in counters.as_dict().items()
                         if k.startswith("transval.")},
        }
        with open(args.report, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.report}")
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, run_server
    from repro.vectorizer.context import VectorizerConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        default_timeout_s=args.timeout,
        cache_dir=args.cache_dir,
        cache_memory_entries=args.cache_entries,
        allow_faults=args.allow_faults,
        default_config=VectorizerConfig(beam_width=args.beam_width),
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        render_serve_summary,
        run_serve_bench,
        validate_serve_bench,
        write_serve_bench,
    )

    targets = [t.strip() for t in args.targets.split(",") if t.strip()]
    unknown = [t for t in targets if t not in available_targets()]
    if unknown:
        print(f"unknown targets: {', '.join(unknown)}; available: "
              f"{', '.join(available_targets())}", file=sys.stderr)
        return 2
    progress = None
    if not args.quiet:
        progress = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    try:
        doc = run_serve_bench(
            kernel_names=args.kernel or None,
            targets=targets,
            concurrency=args.concurrency,
            hot_requests=args.requests,
            workers=args.serve_workers,
            beam_width=args.beam_width,
            progress=progress,
        )
    except KeyError as exc:
        print(f"bench --serve: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        validate_serve_bench(doc)
    except ValueError as exc:
        print(f"bench --serve FAILED: {exc}", file=sys.stderr)
        return 1
    out = args.out
    if out == "BENCH_vegen.json":  # the non-serve default doesn't apply
        out = "BENCH_serve.json"
    write_serve_bench(doc, out)
    render_serve_summary(doc)
    print(f"wrote {out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.serve:
        return _cmd_bench_serve(args)
    from repro.kernels import all_kernels
    from repro.obs import (
        compare_bench,
        load_bench,
        render_bench_summary,
        run_bench,
        validate_bench,
        write_bench,
    )

    if args.targets == "all":
        targets = list(available_targets())
    else:
        targets = [t.strip() for t in args.targets.split(",") if t.strip()]
        unknown = [t for t in targets if t not in available_targets()]
        if unknown:
            print(f"unknown targets: {', '.join(unknown)}; available: "
                  f"{', '.join(available_targets())}", file=sys.stderr)
            return 2

    kernel_names = None
    if args.kernel:
        kernel_names = list(args.kernel)
    elif args.kernels is not None:
        kernel_names = sorted(all_kernels())[:args.kernels]

    progress = None
    if not args.quiet:
        progress = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    try:
        doc = run_bench(kernel_names=kernel_names, targets=targets,
                        beam_width=args.beam_width, progress=progress,
                        jobs=args.jobs, profile_top=args.profile,
                        verify=not args.no_verify, warm=args.warm,
                        gap_node_budget=args.gap_budget)
    except KeyError as exc:
        print(f"bench: {exc.args[0]}", file=sys.stderr)
        return 2
    validate_bench(doc)
    write_bench(doc, args.out)
    render_bench_summary(doc)
    print(f"wrote {args.out}")

    if args.compare:
        old = load_bench(args.compare)
        regressions, notes = compare_bench(
            old, doc, cost_tolerance=args.tolerance
        )
        for note in notes:
            print(f"note: {note}")
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        if regressions:
            print(f"{len(regressions)} regression(s) vs {args.compare}")
            return 1
        print(f"no regressions vs {args.compare}")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    import os

    from repro.target.artifact import (
        dumps_artifact,
        generate_artifact,
        load_artifact,
        spec_content_hash,
        write_artifact,
    )
    from repro.target.registry import DEFAULT_ARTIFACT_PATH

    path = args.out or DEFAULT_ARTIFACT_PATH
    if args.check:
        if not os.path.exists(path):
            print(f"gen --check: artifact missing at {path} "
                  f"(run `repro gen` and commit the result)",
                  file=sys.stderr)
            return 1
        try:
            committed = load_artifact(path, check_fresh=False)
        except Exception as exc:  # malformed artifact is a failure too
            print(f"gen --check: {exc}", file=sys.stderr)
            return 1
        if committed.get("spec_hash") != spec_content_hash():
            print(f"gen --check: artifact at {path} is STALE (spec "
                  f"inventory or target configs changed since it was "
                  f"generated); rerun `repro gen` and commit",
                  file=sys.stderr)
            return 1
        regenerated = dumps_artifact(generate_artifact())
        with open(path) as handle:
            on_disk = handle.read()
        if regenerated != on_disk:
            print(f"gen --check: artifact at {path} differs from a "
                  f"fresh regeneration; rerun `repro gen` and commit",
                  file=sys.stderr)
            return 1
        print(f"gen --check: {path} is fresh and byte-identical to a "
              f"regeneration")
        return 0
    doc = generate_artifact()
    write_artifact(doc, path)
    n_insts = len(doc["instructions"])
    n_bad = len(doc["unliftable"])
    print(f"wrote {path}: {n_insts} instructions "
          f"({n_bad} unliftable), spec hash {doc['spec_hash'][:12]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.bench import DEFAULT_GAP_NODE_BUDGET
    from repro.vectorizer.bounds import BOUND_MODES
    from repro.vectorizer.context import DEFAULT_EXACT_NODE_BUDGET

    parser = argparse.ArgumentParser(
        prog="repro",
        description="VeGen reproduction: vectorize mini-C kernels and "
                    "inspect generated target descriptions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("vectorize", help="vectorize a mini-C file")
    p.add_argument("file")
    p.add_argument("--target", default="avx2",
                   choices=available_targets())
    p.add_argument("--beam-width", type=int, default=64)
    p.add_argument("--exact", action="store_true",
                   help="run pack selection to exhaustion (incumbent "
                        "branch and bound seeded by the beam) and report "
                        "whether the cost is provably optimal; bounded "
                        "by --exact-budget")
    p.add_argument("--exact-budget", type=int,
                   default=DEFAULT_EXACT_NODE_BUDGET, metavar="N",
                   help="node budget for --exact (default "
                        f"{DEFAULT_EXACT_NODE_BUDGET}, the proof "
                        "budget: sized to prove every cell the "
                        "admissible bound can close in seconds; 'repro "
                        "bench --gap-budget' probes at a smaller "
                        "default, see there); when exhausted the best "
                        "incumbent is returned without an optimality "
                        "proof")
    p.add_argument("--bound", choices=BOUND_MODES, default="matching",
                   help="search lower-bound provider (default "
                        "matching, the admissible relaxation; slp "
                        "disables the bound gates — the differential "
                        "oracle with identical packs/costs)")
    p.add_argument("--dump-ir", action="store_true",
                   help="also print the scalar IR")
    p.add_argument("--report", action="store_true",
                   help="print a pack-selection report")
    p.add_argument("--reassociate", action="store_true",
                   help="balance reduction chains first (clang -O3 "
                        "-ffast-math behaviour)")
    p.add_argument("--compare-baseline", action="store_true",
                   help="also run the LLVM-style baseline")
    p.add_argument("--passes", default=None, metavar="P1,P2,...",
                   help="run a custom pass pipeline instead of the "
                        "default (see repro.passes.available_passes)")
    p.add_argument("--trace", action="store_true",
                   help="run with tracing/counters on and print the "
                        "phase-timing report")
    p.add_argument("--emit-c", action="store_true",
                   help="print the vectorized program as compilable C "
                        "intrinsics source instead of the IR dump")
    p.set_defaults(func=_cmd_vectorize)

    p = sub.add_parser("describe",
                       help="show an instruction's generated description")
    p.add_argument("instruction")
    p.add_argument("--target", default="avx512_vnni",
                   choices=available_targets())
    p.set_defaults(func=_cmd_describe)

    p = sub.add_parser("targets", help="list targets")
    p.set_defaults(func=_cmd_targets)

    p = sub.add_parser("validate",
                       help="re-run the §6.1 semantics validation")
    p.add_argument("--target", default="avx512_vnni",
                   choices=available_targets())
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("lint",
                       help="run the sanitizer suite over vectorization "
                            "results")
    p.add_argument("file", nargs="?", default=None,
                   help="mini-C file to lint (omit with --kernel/--all)")
    p.add_argument("--kernel", default=None,
                   help="lint one bundled kernel by name")
    p.add_argument("--all", action="store_true",
                   help="lint every bundled kernel")
    p.add_argument("--target", default="avx2",
                   choices=available_targets() + ["all"])
    p.add_argument("--beam-width", type=int, default=4,
                   help="pack-selection beam width (small by default: "
                        "lint favours coverage over best packing)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("verify",
                       help="prove emitted vector programs equivalent "
                            "to their scalar inputs (TransVal)")
    p.add_argument("file", nargs="?", default=None,
                   help="mini-C file to verify (omit with "
                        "--kernel/--all)")
    p.add_argument("--kernel", action="append", default=None,
                   help="verify one bundled kernel by name (repeatable)")
    p.add_argument("--all", action="store_true",
                   help="verify every bundled kernel")
    p.add_argument("--target", default="avx2",
                   choices=available_targets() + ["all"])
    p.add_argument("--beam-width", type=int, default=8,
                   help="pack-selection beam width (default 8, matching "
                        "the bench matrix)")
    p.add_argument("--enum-bits", type=int, default=12,
                   help="exhaustively enumerate fallback goals with at "
                        "most this many free input bits (default 12)")
    p.add_argument("--report", default=None, metavar="FILE.json",
                   help="write the per-cell verification report as JSON")
    p.add_argument("--quiet", action="store_true",
                   help="only print failures and the summary line")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("bench",
                       help="benchmark the kernel x target matrix and "
                            "write the BENCH_vegen.json trajectory")
    p.add_argument("--kernel", action="append", default=None,
                   help="bench one kernel by name (repeatable; default: "
                        "all bundled kernels)")
    p.add_argument("--kernels", type=int, default=None, metavar="N",
                   help="bench only the first N kernels (sorted by name)")
    p.add_argument("--targets",
                   default="sse4,avx2,avx512_vnni,neon128",
                   help="comma-separated target list, or 'all' "
                        "(default: sse4,avx2,avx512_vnni,neon128)")
    p.add_argument("--beam-width", type=int, default=8,
                   help="pack-selection beam width (default 8: wide "
                        "enough to exercise the search, fast enough for "
                        "the full matrix)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan the kernel x target cells over N worker "
                        "processes (default 1: serial); the merged "
                        "document is identical apart from wall times")
    p.add_argument("--profile", type=int, nargs="?", const=15, default=0,
                   metavar="N",
                   help="run each cell under cProfile and record its top "
                        "N functions by cumulative time in the bench "
                        "document (default N: 15); profiled wall times "
                        "carry tracing overhead")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the per-cell TransVal verification column")
    p.add_argument("--warm", action="store_true",
                   help="enable the warm-start cost cache "
                        "(VectorizerConfig(warm_start=True)); identical "
                        "packs/costs to a cold run, faster search on "
                        "repeat compiles (set REPRO_WARM_CACHE_DIR for "
                        "cross-process reuse)")
    p.add_argument("--gap-budget", type=int,
                   default=DEFAULT_GAP_NODE_BUDGET, metavar="N",
                   help="node budget for the per-cell exact pass behind "
                        "the optimality_gap column (default "
                        f"{DEFAULT_GAP_NODE_BUDGET}, the quick probe "
                        "budget: bounds the full-matrix pass to "
                        "seconds per cell, so heavy cells report null "
                        "here and get their proof attempts from "
                        "'repro vectorize --exact' at its larger "
                        "default; 0 disables the pass, reporting null "
                        "everywhere)")
    p.add_argument("--out", default="BENCH_vegen.json",
                   help="output path (default: BENCH_vegen.json)")
    p.add_argument("--compare", default=None, metavar="OLD.json",
                   help="compare against an older bench file; exit 1 on "
                        "cost regressions")
    p.add_argument("--tolerance", type=float, default=0.01,
                   help="cost-ratio regression tolerance (default 0.01)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-kernel progress on stderr")
    p.add_argument("--serve", action="store_true",
                   help="benchmark the compile server instead: spin an "
                        "in-process server, drive it with concurrent "
                        "clients, write BENCH_serve.json")
    p.add_argument("--concurrency", type=int, default=128,
                   help="[--serve] concurrent keep-alive clients in the "
                        "hot phase (default 128)")
    p.add_argument("--requests", type=int, default=1000,
                   help="[--serve] total hot-phase requests "
                        "(default 1000)")
    p.add_argument("--serve-workers", type=int, default=2, metavar="N",
                   help="[--serve] compile worker processes "
                        "(0: inline threads; default 2)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the long-lived compile server (repro.serve)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port (0: pick a free port; default 8787)")
    p.add_argument("--workers", type=int, default=2,
                   help="compile worker processes (0: inline threads; "
                        "default 2)")
    p.add_argument("--beam-width", type=int, default=8,
                   help="default pack-selection beam width (requests "
                        "may override via config.beam_width)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="per-worker inbox bound (default 64)")
    p.add_argument("--max-pending", type=int, default=256,
                   help="global in-flight bound; above it requests get "
                        "429 (default 256)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="max requests per worker IPC round-trip "
                        "(default 8)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="default per-request deadline in seconds "
                        "(default 30)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent on-disk result cache directory "
                        "(default: in-memory only)")
    p.add_argument("--cache-entries", type=int, default=1024,
                   help="in-memory LRU capacity (default 1024)")
    p.add_argument("--allow-faults", action="store_true",
                   help="enable the fault-injection request fields "
                        "(test harness only; never in production)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "gen",
        help="run the offline generator and serialize the target "
             "artifact (repro.target.artifact)")
    p.add_argument("--out", default=None, metavar="FILE.json",
                   help="artifact path (default: the committed "
                        "src/repro/target/vegen_targets.json)")
    p.add_argument("--check", action="store_true",
                   help="verify the committed artifact is present, "
                        "fresh, and byte-identical to a regeneration; "
                        "exit 1 otherwise")
    p.set_defaults(func=_cmd_gen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
