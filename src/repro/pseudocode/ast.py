"""AST for the Intel-documentation-style pseudocode language.

Instruction semantics in this reproduction are written in the same style as
Intel's Intrinsics Guide pseudocode (Figure 4a of the paper)::

    pmaddwd(a: 4 x s16, b: 4 x s16) -> 2 x s32
    FOR j := 0 to 1
        i := j*32
        dst[i+31:i] := SignExtend32(a[i+31:i+16]*b[i+31:i+16]) +
                       SignExtend32(a[i+15:i]*b[i+15:i])
    ENDFOR

A *spec* is a signature (input registers with lane count, element width, and
element kind) plus a statement list that assigns ``dst``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


class ElemKind:
    """Element interpretation of a register's lanes."""

    SIGNED = "s"
    UNSIGNED = "u"
    FLOAT = "f"


@dataclass(frozen=True)
class ParamSpec:
    """One input register: ``name: lanes x kind width`` (e.g. ``a: 4 x s16``)."""

    name: str
    lanes: int
    elem_width: int
    kind: str  # ElemKind

    @property
    def total_width(self) -> int:
        return self.lanes * self.elem_width

    def __str__(self) -> str:
        return f"{self.name}: {self.lanes} x {self.kind}{self.elem_width}"


@dataclass(frozen=True)
class OutputSpec:
    """The output register shape: ``lanes x kind width``."""

    lanes: int
    elem_width: int
    kind: str

    @property
    def total_width(self) -> int:
        return self.lanes * self.elem_width


# -- expressions ------------------------------------------------------------


class Expr:
    """Base class for pseudocode expressions."""


@dataclass(frozen=True)
class Num(Expr):
    value: int


@dataclass(frozen=True)
class FNum(Expr):
    value: float


@dataclass(frozen=True)
class Ref(Expr):
    name: str


@dataclass(frozen=True)
class SliceExpr(Expr):
    """``name[hi:lo]`` — a bit slice of a register or temporary."""

    name: str
    hi: Expr
    lo: Expr


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str  # one of: + - * / % << >> == != < <= > >= AND OR XOR
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class UnExpr(Expr):
    op: str  # one of: - NOT
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    name: str
    args: Tuple[Expr, ...]


# -- statements ---------------------------------------------------------------


class Stmt:
    """Base class for pseudocode statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``x := e`` or ``x[hi:lo] := e``."""

    target: Expr  # Ref or SliceExpr
    value: Expr


@dataclass(frozen=True)
class ForStmt(Stmt):
    var: str
    lo: Expr
    hi: Expr  # inclusive, per Intel convention
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class IfStmt(Stmt):
    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class ReturnStmt(Stmt):
    value: Expr


@dataclass(frozen=True)
class FuncDef:
    """``DEFINE name(p1, p2) { ... RETURN e }`` — inlined at call sites."""

    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]


@dataclass
class Spec:
    """A complete instruction semantics specification."""

    name: str
    params: List[ParamSpec]
    output: OutputSpec
    body: List[Stmt]
    functions: dict = field(default_factory=dict)  # name -> FuncDef

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"{self.name}: no parameter {name!r}")
