"""Intel-documentation-style pseudocode language (§6.1 substitute for the
Intrinsics Guide XML): lexer, parser, symbolic evaluator (to bitvector
formulas), and an independent concrete interpreter used as the
random-testing oracle."""

from repro.pseudocode.ast import (
    Assign,
    BinExpr,
    Call,
    ElemKind,
    Expr,
    FNum,
    ForStmt,
    FuncDef,
    IfStmt,
    Num,
    OutputSpec,
    ParamSpec,
    Ref,
    ReturnStmt,
    SliceExpr,
    Spec,
    Stmt,
    UnExpr,
)
from repro.pseudocode.interp import run_spec
from repro.pseudocode.lexer import PseudocodeSyntaxError, Token, tokenize
from repro.pseudocode.parser import parse_spec, parse_statements
from repro.pseudocode.symbolic import (
    PseudocodeSemanticsError,
    SymbolicResult,
    SymValue,
    evaluate_spec,
)

__all__ = [
    "Assign", "BinExpr", "Call", "ElemKind", "Expr", "FNum", "ForStmt",
    "FuncDef", "IfStmt", "Num", "OutputSpec", "ParamSpec", "Ref",
    "ReturnStmt", "SliceExpr", "Spec", "Stmt", "UnExpr",
    "run_spec", "PseudocodeSyntaxError", "Token", "tokenize",
    "parse_spec", "parse_statements", "PseudocodeSemanticsError",
    "SymbolicResult", "SymValue", "evaluate_spec",
]
