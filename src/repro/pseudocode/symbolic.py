"""Symbolic evaluation of pseudocode into bitvector formulas (§6.1).

This implements the paper's translation from Intel-style pseudocode to SMT
formulas, with our bitvector library standing in for z3:

* every value is a bitvector; there are **no implicit overflows** — binary
  operations widen their operands first (sign- or zero-extension chosen by
  the operand's signedness), exactly as the paper describes;
* assignments to bit slices are modeled as pure expressions producing the
  concatenation of the unaffected sub-vectors and the updated sub-vector;
* function calls are inlined;
* ``FOR`` loops are unrolled (all trip counts are constants);
* ``IF`` statements are if-converted: both branches run on copies of the
  environment and every mutated binding is merged with an ``ite``.

The result is one formula for ``dst`` over one free variable per input
register, which ``repro.vidl.lift`` slices into per-lane operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.bitvector import (
    BVExpr,
    BVVar,
    bv_binary,
    bv_concat,
    bv_const,
    bv_extract,
    bv_ite,
    bv_sext,
    bv_trunc,
    bv_var,
    bv_zext,
    simplify,
)
from repro.pseudocode.ast import (
    Assign,
    BinExpr,
    Call,
    ElemKind,
    Expr,
    FNum,
    ForStmt,
    FuncDef,
    IfStmt,
    Num,
    Ref,
    ReturnStmt,
    SliceExpr,
    Spec,
    Stmt,
    UnExpr,
)
from repro.utils.fp import float_to_bits


class PseudocodeSemanticsError(ValueError):
    """Raised when pseudocode cannot be evaluated symbolically."""


class SymValue:
    """A bitvector expression tagged with an element interpretation."""

    __slots__ = ("expr", "kind")

    def __init__(self, expr: BVExpr, kind: str):
        self.expr = expr
        self.kind = kind  # ElemKind

    @property
    def width(self) -> int:
        return self.expr.width

    def __repr__(self) -> str:
        return f"SymValue({self.expr!r}, {self.kind})"


Binding = Union[int, SymValue]


class _NotConst(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Binding):
        self.value = value


DST = "dst"
_DST_INIT = "_dst_init"


class SymbolicResult:
    """Outcome of symbolically evaluating a spec."""

    def __init__(self, spec: Spec, dst: BVExpr,
                 inputs: Dict[str, BVVar]):
        self.spec = spec
        self.dst = dst
        self.inputs = inputs

    def references_uninitialized_output(self) -> bool:
        from repro.bitvector import free_variables

        return any(v.name == _DST_INIT for v in free_variables(self.dst))


def evaluate_spec(spec: Spec) -> SymbolicResult:
    """Symbolically evaluate a spec, returning the simplified dst formula."""
    evaluator = SymbolicEvaluator(spec)
    dst = evaluator.run()
    return SymbolicResult(spec, simplify(dst), dict(evaluator.inputs))


class SymbolicEvaluator:
    def __init__(self, spec: Spec):
        self.spec = spec
        self.inputs: Dict[str, BVVar] = {
            p.name: bv_var(p.name, p.total_width) for p in spec.params
        }
        self.env: Dict[str, Binding] = {}
        for p in spec.params:
            self.env[p.name] = SymValue(self.inputs[p.name], p.kind)
        out_width = spec.output.total_width
        self.env[DST] = SymValue(bv_var(_DST_INIT, out_width),
                                 spec.output.kind)

    def run(self) -> BVExpr:
        self._exec_stmts(self.spec.body, self.env)
        dst = self.env[DST]
        assert isinstance(dst, SymValue)
        return dst.expr

    # -- statement execution ------------------------------------------------

    def _exec_stmts(self, stmts, env: Dict[str, Binding]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: Stmt, env: Dict[str, Binding]) -> None:
        if isinstance(stmt, Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ForStmt):
            lo = self._const_eval(stmt.lo, env)
            hi = self._const_eval(stmt.hi, env)
            for value in range(lo, hi + 1):
                env[stmt.var] = value
                self._exec_stmts(stmt.body, env)
        elif isinstance(stmt, IfStmt):
            self._exec_if(stmt, env)
        elif isinstance(stmt, ReturnStmt):
            raise _Return(self._eval(stmt.value, env))
        else:
            raise PseudocodeSemanticsError(f"unknown statement {stmt!r}")

    def _exec_assign(self, stmt: Assign, env: Dict[str, Binding]) -> None:
        if isinstance(stmt.target, Ref):
            name = stmt.target.name
            # Pure index expressions stay concrete (e.g. ``i := j*32``).
            try:
                env[name] = self._const_eval(stmt.value, env)
                return
            except _NotConst:
                pass
            env[name] = self._to_sym(self._eval(stmt.value, env))
            return
        target = stmt.target
        assert isinstance(target, SliceExpr)
        hi = self._const_eval(target.hi, env)
        lo = self._const_eval(target.lo, env)
        if hi < lo:
            raise PseudocodeSemanticsError(
                f"slice [{hi}:{lo}] has hi < lo"
            )
        value = self._to_sym(self._eval(stmt.value, env))
        coerced = _coerce_width(value, hi - lo + 1)
        old = env.get(target.name)
        if old is None:
            old = SymValue(bv_const(0, hi + 1), ElemKind.UNSIGNED)
        if not isinstance(old, SymValue):
            raise PseudocodeSemanticsError(
                f"slice assignment to index variable {target.name!r}"
            )
        env[target.name] = SymValue(
            _splice(old.expr, hi, lo, coerced.expr), old.kind
        )

    def _exec_if(self, stmt: IfStmt, env: Dict[str, Binding]) -> None:
        try:
            cond = self._const_eval(stmt.cond, env)
            self._exec_stmts(
                stmt.then_body if cond else stmt.else_body, env
            )
            return
        except _NotConst:
            pass
        cond_value = self._to_sym(self._eval(stmt.cond, env))
        if cond_value.width != 1:
            raise PseudocodeSemanticsError("IF condition must be 1 bit wide")
        then_env = dict(env)
        else_env = dict(env)
        self._exec_stmts(stmt.then_body, then_env)
        self._exec_stmts(stmt.else_body, else_env)
        merged: Dict[str, Binding] = {}
        for key in set(then_env) | set(else_env):
            a = then_env.get(key)
            b = else_env.get(key)
            if a is None or b is None:
                # A binding introduced in only one branch is dead after the
                # merge unless the other branch defines it too.
                continue
            if a is b or (isinstance(a, int) and a == b):
                merged[key] = a
                continue
            sa, sb = self._to_sym(a), self._to_sym(b)
            width = max(sa.width, sb.width)
            sa = _extend(sa, width)
            sb = _extend(sb, width)
            kind = sa.kind if sa.kind == sb.kind else ElemKind.SIGNED
            merged[key] = SymValue(
                bv_ite(cond_value.expr, sa.expr, sb.expr), kind
            )
        env.clear()
        env.update(merged)

    # -- expression evaluation --------------------------------------------------

    def _const_eval(self, expr: Expr, env: Dict[str, Binding]) -> int:
        """Evaluate a pure index expression to a Python int."""
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Ref):
            value = env.get(expr.name)
            if isinstance(value, int):
                return value
            raise _NotConst()
        if isinstance(expr, UnExpr) and expr.op == "-":
            return -self._const_eval(expr.operand, env)
        if isinstance(expr, BinExpr):
            lhs = self._const_eval(expr.lhs, env)
            rhs = self._const_eval(expr.rhs, env)
            op = expr.op
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                if rhs == 0:
                    raise PseudocodeSemanticsError("index division by zero")
                return lhs // rhs
            if op == "%":
                return lhs % rhs
            if op == "<<":
                return lhs << rhs
            if op == ">>":
                return lhs >> rhs
            if op == "==":
                return int(lhs == rhs)
            if op == "!=":
                return int(lhs != rhs)
            if op == "<":
                return int(lhs < rhs)
            if op == "<=":
                return int(lhs <= rhs)
            if op == ">":
                return int(lhs > rhs)
            if op == ">=":
                return int(lhs >= rhs)
        raise _NotConst()

    def _to_sym(self, value: Binding) -> SymValue:
        if isinstance(value, SymValue):
            return value
        # A bare integer used in a bitvector context: signed constant of
        # minimal width.
        width = max(1, int(value).bit_length() + 1)
        return SymValue(bv_const(value, width), ElemKind.SIGNED)

    def _eval(self, expr: Expr, env: Dict[str, Binding]) -> Binding:
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, FNum):
            # Float literals are only meaningful in f32/f64 contexts; encode
            # as f64 bits and let the op coerce (rarely used).
            return SymValue(
                bv_const(float_to_bits(expr.value, 64), 64), ElemKind.FLOAT
            )
        if isinstance(expr, Ref):
            value = env.get(expr.name)
            if value is None:
                raise PseudocodeSemanticsError(
                    f"use of undefined variable {expr.name!r}"
                )
            return value
        if isinstance(expr, SliceExpr):
            return self._eval_slice(expr, env)
        if isinstance(expr, UnExpr):
            return self._eval_unary(expr, env)
        if isinstance(expr, BinExpr):
            return self._eval_binary(expr, env)
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        raise PseudocodeSemanticsError(f"cannot evaluate {expr!r}")

    def _eval_slice(self, expr: SliceExpr,
                    env: Dict[str, Binding]) -> SymValue:
        hi = self._const_eval(expr.hi, env)
        lo = self._const_eval(expr.lo, env)
        base = env.get(expr.name)
        if base is None:
            raise PseudocodeSemanticsError(
                f"slice of undefined variable {expr.name!r}"
            )
        base = self._to_sym(base)
        if hi >= base.width:
            base = _extend(base, hi + 1)
        kind = base.kind
        if kind == ElemKind.FLOAT:
            width = hi - lo + 1
            if width not in (32, 64) or lo % width != 0:
                raise PseudocodeSemanticsError(
                    f"float slice [{hi}:{lo}] is not element aligned"
                )
        return SymValue(bv_extract(hi, lo, base.expr), kind)

    def _eval_unary(self, expr: UnExpr,
                    env: Dict[str, Binding]) -> Binding:
        operand = self._eval(expr.operand, env)
        if isinstance(operand, int):
            if expr.op == "-":
                return -operand
            if expr.op == "NOT":
                return ~operand
        operand = self._to_sym(operand)
        if expr.op == "-":
            if operand.kind == ElemKind.FLOAT:
                from repro.bitvector.expr import BVUnary

                return SymValue(BVUnary("fneg", operand.expr), ElemKind.FLOAT)
            widened = _extend(operand, operand.width + 1)
            from repro.bitvector.expr import BVUnary

            return SymValue(BVUnary("neg", widened.expr), ElemKind.SIGNED)
        if expr.op == "NOT":
            from repro.bitvector.expr import BVUnary

            return SymValue(BVUnary("not", operand.expr), operand.kind)
        raise PseudocodeSemanticsError(f"unknown unary op {expr.op!r}")

    def _eval_binary(self, expr: BinExpr,
                     env: Dict[str, Binding]) -> Binding:
        try:
            return self._const_eval(expr, env)
        except _NotConst:
            pass
        lhs = self._eval(expr.lhs, env)
        rhs = self._eval(expr.rhs, env)
        return apply_binary(expr.op, self._to_sym(lhs), self._to_sym(rhs),
                            self._const_shift(expr, env))

    def _const_shift(self, expr: BinExpr,
                     env: Dict[str, Binding]) -> Optional[int]:
        if expr.op in ("<<", ">>"):
            try:
                return self._const_eval(expr.rhs, env)
            except _NotConst:
                return None  # per-lane variable shift (psrav and friends)
        return None

    # -- calls --------------------------------------------------------------------

    def _eval_call(self, expr: Call, env: Dict[str, Binding]) -> Binding:
        name = expr.name
        fn = self.spec.functions.get(name)
        if fn is not None:
            return self._inline_call(fn, expr, env)
        args = [self._eval(a, env) for a in expr.args]
        return apply_builtin(
            name, args, self._to_sym,
            lambda e: self._const_eval(e, env), expr,
        )

    def _inline_call(self, fn: FuncDef, expr: Call,
                     env: Dict[str, Binding]) -> Binding:
        if len(fn.params) != len(expr.args):
            raise PseudocodeSemanticsError(
                f"{fn.name}: expected {len(fn.params)} args, "
                f"got {len(expr.args)}"
            )
        local: Dict[str, Binding] = {}
        for param, arg in zip(fn.params, expr.args):
            local[param] = self._eval(arg, env)
        try:
            self._exec_stmts(fn.body, local)
        except _Return as ret:
            return ret.value
        raise PseudocodeSemanticsError(f"{fn.name}: missing RETURN")


# -- shared op semantics -------------------------------------------------------


def _extend(value: SymValue, width: int) -> SymValue:
    if width == value.width:
        return value
    if width < value.width:
        raise PseudocodeSemanticsError("cannot narrow via extend")
    if value.kind == ElemKind.FLOAT:
        raise PseudocodeSemanticsError("cannot extend a float bit pattern")
    if value.kind == ElemKind.SIGNED:
        return SymValue(bv_sext(value.expr, width), value.kind)
    return SymValue(bv_zext(value.expr, width), value.kind)


def _coerce_width(value: SymValue, width: int) -> SymValue:
    """Truncate or extend to an exact width (slice-assignment coercion)."""
    if value.width == width:
        return value
    if value.width > width:
        if value.kind == ElemKind.FLOAT:
            raise PseudocodeSemanticsError("cannot truncate a float")
        return SymValue(bv_trunc(value.expr, width), value.kind)
    return _extend(value, width)


def _splice(old: BVExpr, hi: int, lo: int, update: BVExpr) -> BVExpr:
    """Concat of unaffected sub-vectors and the updated sub-vector (§6.1)."""
    if hi >= old.width:
        old = bv_zext(old, hi + 1)
    parts: List[BVExpr] = []
    if hi + 1 < old.width:
        parts.append(bv_extract(old.width - 1, hi + 1, old))
    parts.append(update)
    if lo > 0:
        parts.append(bv_extract(lo - 1, 0, old))
    return bv_concat(parts)


def apply_binary(op: str, lhs: SymValue, rhs: SymValue,
                 shift_amount: Optional[int] = None) -> SymValue:
    """The language's widening binary-operator semantics."""
    float_side = ElemKind.FLOAT in (lhs.kind, rhs.kind)
    if float_side:
        return _apply_float_binary(op, lhs, rhs)
    signed = ElemKind.SIGNED in (lhs.kind, rhs.kind)
    kind = ElemKind.SIGNED if signed else ElemKind.UNSIGNED
    if op in ("+", "-"):
        width = max(lhs.width, rhs.width) + 1
        result = bv_binary("add" if op == "+" else "sub",
                           _extend(lhs, width).expr,
                           _extend(rhs, width).expr)
        return SymValue(result, ElemKind.SIGNED if op == "-" else kind)
    if op == "*":
        width = lhs.width + rhs.width
        result = bv_binary("mul", _extend(lhs, width).expr,
                           _extend(rhs, width).expr)
        return SymValue(result, kind)
    if op in ("/", "%"):
        width = max(lhs.width, rhs.width)
        opname = ("sdiv" if op == "/" else "srem") if signed else (
            "udiv" if op == "/" else "urem")
        result = bv_binary(opname, _extend(lhs, width).expr,
                           _extend(rhs, width).expr)
        return SymValue(result, kind)
    if op in ("<<", ">>"):
        # Shifts do not widen: they operate at the left operand's width
        # (C semantics, and what scalar IR from C kernels looks like).
        # Widen explicitly before shifting when the spec needs headroom.
        if op == "<<":
            opname = "shl"
        else:
            opname = "ashr" if lhs.kind == ElemKind.SIGNED else "lshr"
        if shift_amount is not None:
            amount = bv_const(min(shift_amount, lhs.width - 1)
                              if opname == "ashr" else shift_amount,
                              lhs.width)
        else:
            if rhs.width > lhs.width:
                amount = bv_trunc(rhs.expr, lhs.width)
            else:
                amount = bv_zext(rhs.expr, lhs.width)
        return SymValue(bv_binary(opname, lhs.expr, amount), lhs.kind)
    if op in ("==", "!=", "<", "<=", ">", ">="):
        # Same-kind operands compare at their common width (the width a C
        # program compares at); mixed signedness needs one extra bit so the
        # signed comparison is exact.
        if lhs.kind == rhs.kind:
            width = max(lhs.width, rhs.width)
        else:
            width = max(lhs.width, rhs.width) + 1
        le, re_ = _extend(lhs, width).expr, _extend(rhs, width).expr
        names = {
            "==": "eq", "!=": "ne",
            "<": "slt" if signed else "ult",
            "<=": "sle" if signed else "ule",
            ">": "sgt" if signed else "ugt",
            ">=": "sge" if signed else "uge",
        }
        return SymValue(bv_binary(names[op], le, re_), ElemKind.UNSIGNED)
    if op in ("AND", "OR", "XOR"):
        width = max(lhs.width, rhs.width)
        result = bv_binary(op.lower(), _extend(lhs, width).expr,
                           _extend(rhs, width).expr)
        return SymValue(result, kind)
    raise PseudocodeSemanticsError(f"unknown binary op {op!r}")


def _apply_float_binary(op: str, lhs: SymValue, rhs: SymValue) -> SymValue:
    if lhs.kind != ElemKind.FLOAT or rhs.kind != ElemKind.FLOAT:
        raise PseudocodeSemanticsError(
            f"{op}: mixing float and integer operands"
        )
    if lhs.width != rhs.width:
        raise PseudocodeSemanticsError(
            f"{op}: float width mismatch {lhs.width} vs {rhs.width}"
        )
    arith = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    if op in arith:
        return SymValue(bv_binary(arith[op], lhs.expr, rhs.expr),
                        ElemKind.FLOAT)
    cmps = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
            ">": "ogt", ">=": "oge"}
    if op in cmps:
        return SymValue(bv_binary(cmps[op], lhs.expr, rhs.expr),
                        ElemKind.UNSIGNED)
    raise PseudocodeSemanticsError(f"{op!r} is not defined on floats")


_SUFFIXED = {"SignExtend": "s", "ZeroExtend": "u", "Truncate": "t",
             "Saturate": "sat", "SaturateU": "usat"}


def apply_builtin(name, args, to_sym, const_eval, call) -> SymValue:
    """Dispatch a builtin function call (shared with the interpreter for
    argument shape checking; semantics here are symbolic)."""
    base, width = _split_builtin(name)
    if base is None:
        raise PseudocodeSemanticsError(f"unknown function {name!r}")
    if base in ("SignExtend", "ZeroExtend", "Truncate"):
        if width is None:
            if len(args) != 2:
                raise PseudocodeSemanticsError(f"{name} needs (value, width)")
            width = const_eval(call.args[1])
            args = args[:1]
        (value,) = (to_sym(a) for a in args)
        if base == "SignExtend":
            return SymValue(bv_sext(value.expr, width), ElemKind.SIGNED)
        if base == "ZeroExtend":
            return SymValue(bv_zext(value.expr, width), ElemKind.UNSIGNED)
        return SymValue(bv_trunc(value.expr, width), value.kind)
    if base in ("Saturate", "SaturateU"):
        if width is None:
            raise PseudocodeSemanticsError(f"{name}: missing width suffix")
        (value,) = (to_sym(a) for a in args)
        return _saturate(value, width, signed=(base == "Saturate"))
    if base == "ABS":
        (value,) = (to_sym(a) for a in args)
        return _abs(value)
    if base in ("MIN", "MAX"):
        a, b = (to_sym(x) for x in args)
        return _min_max(a, b, is_min=(base == "MIN"))
    if base == "SELECT":
        cond, on_true, on_false = (to_sym(a) for a in args)
        if cond.width != 1:
            raise PseudocodeSemanticsError("Select condition must be 1 bit")
        width = max(on_true.width, on_false.width)
        a_ext = _extend(on_true, width) if on_true.kind != ElemKind.FLOAT \
            else on_true
        b_ext = _extend(on_false, width) if on_false.kind != ElemKind.FLOAT \
            else on_false
        kind = a_ext.kind if a_ext.kind == b_ext.kind else ElemKind.SIGNED
        return SymValue(bv_ite(cond.expr, a_ext.expr, b_ext.expr), kind)
    if base in ("SIGNED", "UNSIGNED"):
        # Kind reinterpretation (no bit change): lets a spec request a
        # signed comparison of zero-extended values, which is exactly what
        # C's integer promotion of unsigned chars/shorts produces.
        (value,) = (to_sym(a) for a in args)
        kind = ElemKind.SIGNED if base == "SIGNED" else ElemKind.UNSIGNED
        return SymValue(value.expr, kind)
    raise PseudocodeSemanticsError(f"unknown function {name!r}")


def _split_builtin(name: str) -> Tuple[Optional[str], Optional[int]]:
    for base in ("SignExtend", "ZeroExtend", "Truncate", "SaturateU",
                 "Saturate"):
        if name.startswith(base):
            suffix = name[len(base):]
            if suffix == "":
                return base, None
            if suffix.isdigit():
                return base, int(suffix)
            return None, None
    upper = name.upper()
    if upper in ("ABS", "MIN", "MAX", "SIGNED", "UNSIGNED", "SELECT"):
        return upper, None
    return None, None


def _saturate(value: SymValue, width: int, signed: bool) -> SymValue:
    """Clamp a (signed) value into the signed/unsigned range of ``width``.

    Per §6.1, unsigned saturation clamps the *signed* interpretation of its
    input (the psubus lesson), so both variants compare sign-wise.
    """
    if value.kind == ElemKind.FLOAT:
        raise PseudocodeSemanticsError("cannot saturate a float")
    work = _extend(SymValue(value.expr, ElemKind.SIGNED),
                   max(value.width, width + 2))
    w = work.width
    if signed:
        hi = (1 << (width - 1)) - 1
        lo = -(1 << (width - 1))
    else:
        hi = (1 << width) - 1
        lo = 0
    hi_c = bv_const(hi, w)
    lo_c = bv_const(lo, w)
    # Deliberately use non-strict comparisons (>= hi+1, <= lo-1), mirroring
    # the z3 simplifier's preference for sle/sge in the paper's pipeline.
    # Pattern canonicalization (§6) rewrites these to the strict forms LLVM
    # IR uses; disabling it breaks saturation matching — the Figure 11
    # ablation.
    clamped = bv_ite(
        bv_binary("sge", work.expr, bv_const(hi + 1, w)),
        hi_c,
        bv_ite(bv_binary("sle", work.expr, bv_const(lo - 1, w)),
               lo_c, work.expr),
    )
    kind = ElemKind.SIGNED if signed else ElemKind.UNSIGNED
    return SymValue(bv_trunc(clamped, width), kind)


def _abs(value: SymValue) -> SymValue:
    from repro.bitvector.expr import BVUnary

    if value.kind == ElemKind.FLOAT:
        zero = bv_const(float_to_bits(0.0, value.width), value.width)
        return SymValue(
            bv_ite(bv_binary("olt", value.expr, zero),
                   BVUnary("fneg", value.expr), value.expr),
            ElemKind.FLOAT,
        )
    zero = bv_const(0, value.width)
    return SymValue(
        bv_ite(bv_binary("slt", value.expr, zero),
               BVUnary("neg", value.expr), value.expr),
        ElemKind.SIGNED,
    )


def _min_max(a: SymValue, b: SymValue, is_min: bool) -> SymValue:
    if ElemKind.FLOAT in (a.kind, b.kind):
        if a.kind != b.kind or a.width != b.width:
            raise PseudocodeSemanticsError("MIN/MAX float operand mismatch")
        cmp = bv_binary("olt" if is_min else "ogt", a.expr, b.expr)
        return SymValue(bv_ite(cmp, a.expr, b.expr), ElemKind.FLOAT)
    signed = ElemKind.SIGNED in (a.kind, b.kind)
    width = max(a.width, b.width)
    ae, be = _extend(a, width), _extend(b, width)
    op = ("slt" if signed else "ult") if is_min else (
        "sgt" if signed else "ugt")
    kind = ElemKind.SIGNED if signed else ElemKind.UNSIGNED
    return SymValue(bv_ite(bv_binary(op, ae.expr, be.expr),
                           ae.expr, be.expr), kind)
