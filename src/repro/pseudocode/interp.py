"""Concrete interpreter for the pseudocode language.

This is a *deliberately independent* implementation of the language
semantics from :mod:`repro.pseudocode.symbolic`: the test suite validates
every translated instruction by running random inputs through both paths
(§6.1: "We validated the SMT formulas by random testing"), so any semantic
drift between the two is caught immediately.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.pseudocode.ast import (
    Assign,
    BinExpr,
    Call,
    ElemKind,
    Expr,
    FNum,
    ForStmt,
    IfStmt,
    Num,
    Ref,
    ReturnStmt,
    SliceExpr,
    Spec,
    Stmt,
    UnExpr,
)
from repro.pseudocode.symbolic import PseudocodeSemanticsError
from repro.utils.fp import float_from_bits, float_to_bits, round_to_width
from repro.utils.intmath import (
    mask,
    saturate_signed,
    saturate_unsigned,
    to_signed,
)


class CVal:
    """A concrete value: integer payloads are *signed* Python ints of
    unbounded precision tagged with a storage width; floats are Python
    floats."""

    __slots__ = ("value", "width", "kind")

    def __init__(self, value, width: int, kind: str):
        self.value = value
        self.width = width
        self.kind = kind

    def __repr__(self) -> str:
        return f"CVal({self.value}, w={self.width}, {self.kind})"


Binding = Union[int, CVal]


class _Return(Exception):
    def __init__(self, value: Binding):
        self.value = value


def run_spec(spec: Spec, inputs: Dict[str, int]) -> int:
    """Run a spec on concrete register values.

    ``inputs`` maps each parameter name to its unsigned register payload.
    Returns the unsigned payload of ``dst``.
    """
    interp = _Interpreter(spec)
    return interp.run(inputs)


class _Interpreter:
    def __init__(self, spec: Spec):
        self.spec = spec

    def run(self, inputs: Dict[str, int]) -> int:
        env: Dict[str, Binding] = {}
        for p in self.spec.params:
            if p.name not in inputs:
                raise PseudocodeSemanticsError(f"missing input {p.name!r}")
            payload = mask(inputs[p.name], p.total_width)
            env[p.name] = CVal(
                _bits_to_value(payload, p.total_width, p.kind),
                p.total_width, p.kind,
            )
        out = self.spec.output
        env["dst"] = CVal(0, out.total_width,
                          out.kind if out.kind != ElemKind.FLOAT
                          else ElemKind.UNSIGNED)
        self._exec_stmts(self.spec.body, env)
        dst = env["dst"]
        assert isinstance(dst, CVal)
        return _value_to_bits(dst)

    # -- statements -----------------------------------------------------------

    def _exec_stmts(self, stmts, env) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: Stmt, env: Dict[str, Binding]) -> None:
        if isinstance(stmt, Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ForStmt):
            lo = self._index(stmt.lo, env)
            hi = self._index(stmt.hi, env)
            for value in range(lo, hi + 1):
                env[stmt.var] = value
                self._exec_stmts(stmt.body, env)
        elif isinstance(stmt, IfStmt):
            cond = self._eval(stmt.cond, env)
            truthy = cond if isinstance(cond, int) else _truthy(cond)
            self._exec_stmts(stmt.then_body if truthy else stmt.else_body,
                             env)
        elif isinstance(stmt, ReturnStmt):
            raise _Return(self._eval(stmt.value, env))
        else:
            raise PseudocodeSemanticsError(f"unknown statement {stmt!r}")

    def _exec_assign(self, stmt: Assign, env: Dict[str, Binding]) -> None:
        value = self._eval(stmt.value, env)
        if isinstance(stmt.target, Ref):
            env[stmt.target.name] = value
            return
        target = stmt.target
        assert isinstance(target, SliceExpr)
        hi = self._index(target.hi, env)
        lo = self._index(target.lo, env)
        width = hi - lo + 1
        cval = _as_cval(value)
        bits = _coerce_bits(cval, width)
        old = env.get(target.name)
        if old is None:
            old = CVal(0, hi + 1, ElemKind.UNSIGNED)
        if not isinstance(old, CVal):
            raise PseudocodeSemanticsError(
                f"slice assignment to index variable {target.name!r}"
            )
        old_bits = _value_to_bits(old)
        total = max(old.width, hi + 1)
        cleared = old_bits & ~(((1 << width) - 1) << lo)
        new_bits = cleared | (bits << lo)
        env[target.name] = CVal(
            _bits_to_value(new_bits, total,
                           old.kind if old.kind != ElemKind.FLOAT
                           else ElemKind.UNSIGNED),
            total,
            old.kind if old.kind != ElemKind.FLOAT else ElemKind.UNSIGNED,
        )

    # -- expressions --------------------------------------------------------------

    def _index(self, expr: Expr, env: Dict[str, Binding]) -> int:
        value = self._eval(expr, env)
        if isinstance(value, int):
            return value
        if isinstance(value, CVal) and value.kind != ElemKind.FLOAT:
            return value.value
        raise PseudocodeSemanticsError(f"index expression is not an integer")

    def _eval(self, expr: Expr, env: Dict[str, Binding]) -> Binding:
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, FNum):
            return CVal(expr.value, 64, ElemKind.FLOAT)
        if isinstance(expr, Ref):
            if expr.name not in env:
                raise PseudocodeSemanticsError(
                    f"use of undefined variable {expr.name!r}"
                )
            return env[expr.name]
        if isinstance(expr, SliceExpr):
            return self._eval_slice(expr, env)
        if isinstance(expr, UnExpr):
            return self._eval_unary(expr, env)
        if isinstance(expr, BinExpr):
            return self._eval_binary(expr, env)
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        raise PseudocodeSemanticsError(f"cannot evaluate {expr!r}")

    def _eval_slice(self, expr: SliceExpr, env) -> CVal:
        hi = self._index(expr.hi, env)
        lo = self._index(expr.lo, env)
        base = env.get(expr.name)
        if base is None:
            raise PseudocodeSemanticsError(
                f"slice of undefined variable {expr.name!r}"
            )
        base = _as_cval(base)
        width = hi - lo + 1
        bits = (_value_to_bits(base) >> lo) & ((1 << width) - 1)
        if base.kind == ElemKind.FLOAT or self._float_param_slice(
            expr.name, width, lo
        ):
            if width not in (32, 64):
                raise PseudocodeSemanticsError("bad float slice width")
            return CVal(float_from_bits(bits, width), width, ElemKind.FLOAT)
        kind = base.kind
        return CVal(_bits_to_value(bits, width, kind), width, kind)

    def _float_param_slice(self, name: str, width: int, lo: int) -> bool:
        for p in self.spec.params:
            if p.name == name:
                return p.kind == ElemKind.FLOAT
        return False

    def _eval_unary(self, expr: UnExpr, env) -> Binding:
        value = self._eval(expr.operand, env)
        if isinstance(value, int):
            return -value if expr.op == "-" else ~value
        if expr.op == "-":
            if value.kind == ElemKind.FLOAT:
                return CVal(-value.value, value.width, ElemKind.FLOAT)
            return CVal(-value.value, value.width + 1, ElemKind.SIGNED)
        if expr.op == "NOT":
            bits = _value_to_bits(value)
            inverted = mask(~bits, value.width)
            return CVal(_bits_to_value(inverted, value.width, value.kind),
                        value.width, value.kind)
        raise PseudocodeSemanticsError(f"unknown unary {expr.op!r}")

    def _eval_binary(self, expr: BinExpr, env) -> Binding:
        lhs = self._eval(expr.lhs, env)
        rhs = self._eval(expr.rhs, env)
        if isinstance(lhs, int) and isinstance(rhs, int):
            return _int_index_binop(expr.op, lhs, rhs)
        a, b = _as_cval(lhs), _as_cval(rhs)
        if ElemKind.FLOAT in (a.kind, b.kind):
            return _float_binop(expr.op, a, b)
        return _int_binop(expr.op, a, b)

    def _eval_call(self, expr: Call, env) -> Binding:
        fn = self.spec.functions.get(expr.name)
        if fn is not None:
            local: Dict[str, Binding] = {}
            for param, arg in zip(fn.params, expr.args):
                local[param] = self._eval(arg, env)
            try:
                self._exec_stmts(fn.body, local)
            except _Return as ret:
                return ret.value
            raise PseudocodeSemanticsError(f"{fn.name}: missing RETURN")
        args = [self._eval(a, env) for a in expr.args]
        return _builtin(expr.name, args)


# -- value plumbing -----------------------------------------------------------


def _bits_to_value(bits: int, width: int, kind: str):
    if kind == ElemKind.FLOAT:
        if width in (32, 64):
            return float_from_bits(bits, width)
        return bits  # whole multi-lane register: keep raw bits
    if kind == ElemKind.SIGNED:
        return to_signed(bits, width)
    return bits


def _value_to_bits(value: CVal) -> int:
    if value.kind == ElemKind.FLOAT and isinstance(value.value, float):
        return float_to_bits(round_to_width(value.value, value.width),
                             value.width)
    return mask(int(value.value), value.width)


def _as_cval(value: Binding) -> CVal:
    if isinstance(value, CVal):
        return value
    width = max(1, int(value).bit_length() + 1)
    return CVal(int(value), width, ElemKind.SIGNED)


def _truthy(value: CVal) -> bool:
    if value.kind == ElemKind.FLOAT:
        return value.value != 0.0
    return value.value != 0


def _coerce_bits(value: CVal, width: int) -> int:
    """Slice-assignment coercion to an exact bit width."""
    if value.kind == ElemKind.FLOAT:
        if value.width != width and width in (32, 64):
            return float_to_bits(round_to_width(value.value, width), width)
        return _value_to_bits(value)
    return mask(int(value.value), width)


def _int_index_binop(op: str, lhs: int, rhs: int) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return lhs // rhs
    if op == "%":
        return lhs % rhs
    if op == "<<":
        return lhs << rhs
    if op == ">>":
        return lhs >> rhs
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op in ("AND", "OR", "XOR"):
        return {"AND": lhs & rhs, "OR": lhs | rhs, "XOR": lhs ^ rhs}[op]
    raise PseudocodeSemanticsError(f"unknown op {op!r}")


def _int_binop(op: str, a: CVal, b: CVal) -> CVal:
    signed = ElemKind.SIGNED in (a.kind, b.kind)
    kind = ElemKind.SIGNED if signed else ElemKind.UNSIGNED
    av, bv = int(a.value), int(b.value)
    if op == "+":
        return CVal(av + bv, max(a.width, b.width) + 1, kind)
    if op == "-":
        return CVal(av - bv, max(a.width, b.width) + 1, ElemKind.SIGNED)
    if op == "*":
        return CVal(av * bv, a.width + b.width, kind)
    if op in ("/", "%"):
        if bv == 0:
            raise PseudocodeSemanticsError("division by zero")
        quotient = int(av / bv) if signed else av // bv
        if op == "/":
            return CVal(quotient, max(a.width, b.width), kind)
        return CVal(av - quotient * bv if signed else av % bv,
                    max(a.width, b.width), kind)
    if op in ("<<", ">>"):
        # Same-width shifts (no widening), mirroring the symbolic semantics
        # (and SMT-LIB's out-of-range behaviour: shl/lshr saturate to 0,
        # ashr to the sign fill).
        amt = mask(bv, a.width)
        if op == "<<":
            bits = mask(mask(av, a.width) << amt, a.width) \
                if amt < a.width else 0
            return CVal(_bits_to_value(bits, a.width, a.kind),
                        a.width, a.kind)
        if a.kind == ElemKind.SIGNED:
            return CVal(av >> min(amt, a.width - 1), a.width, a.kind)
        return CVal(mask(av, a.width) >> amt if amt < a.width else 0,
                    a.width, a.kind)
    if op in ("==", "!=", "<", "<=", ">", ">="):
        result = _int_index_binop(op, av, bv)
        return CVal(result, 1, ElemKind.UNSIGNED)
    if op in ("AND", "OR", "XOR"):
        width = max(a.width, b.width)
        abits = mask(av, width)
        bbits = mask(bv, width)
        bits = {"AND": abits & bbits, "OR": abits | bbits,
                "XOR": abits ^ bbits}[op]
        return CVal(_bits_to_value(bits, width, kind), width, kind)
    raise PseudocodeSemanticsError(f"unknown op {op!r}")


def _float_binop(op: str, a: CVal, b: CVal) -> CVal:
    if a.kind != ElemKind.FLOAT or b.kind != ElemKind.FLOAT:
        raise PseudocodeSemanticsError(f"{op}: mixing float and int")
    if a.width != b.width:
        raise PseudocodeSemanticsError("float width mismatch")
    av, bv = a.value, b.value
    if op == "+":
        return CVal(round_to_width(av + bv, a.width), a.width, a.kind)
    if op == "-":
        return CVal(round_to_width(av - bv, a.width), a.width, a.kind)
    if op == "*":
        return CVal(round_to_width(av * bv, a.width), a.width, a.kind)
    if op == "/":
        if bv == 0.0:
            raise PseudocodeSemanticsError("float division by zero")
        return CVal(round_to_width(av / bv, a.width), a.width, a.kind)
    cmps = {"==": av == bv, "!=": av != bv, "<": av < bv,
            "<=": av <= bv, ">": av > bv, ">=": av >= bv}
    if op in cmps:
        return CVal(int(cmps[op]), 1, ElemKind.UNSIGNED)
    raise PseudocodeSemanticsError(f"{op!r} is not defined on floats")


def _builtin(name: str, args: List[Binding]) -> CVal:
    from repro.pseudocode.symbolic import _split_builtin

    base, width = _split_builtin(name)
    if base is None:
        raise PseudocodeSemanticsError(f"unknown function {name!r}")
    if base in ("SignExtend", "ZeroExtend", "Truncate"):
        if width is None:
            value, width = _as_cval(args[0]), int(_as_cval(args[1]).value)
        else:
            value = _as_cval(args[0])
        bits = _value_to_bits(value)
        if base == "SignExtend":
            return CVal(to_signed(bits, value.width), width, ElemKind.SIGNED)
        if base == "ZeroExtend":
            return CVal(bits, width, ElemKind.UNSIGNED)
        truncated = mask(bits, width)
        return CVal(_bits_to_value(truncated, width, value.kind),
                    width, value.kind)
    if base == "Saturate":
        value = _as_cval(args[0])
        bits = saturate_signed(int(value.value), width)
        return CVal(to_signed(bits, width), width, ElemKind.SIGNED)
    if base == "SaturateU":
        value = _as_cval(args[0])
        return CVal(saturate_unsigned(int(value.value), width), width,
                    ElemKind.UNSIGNED)
    if base == "ABS":
        value = _as_cval(args[0])
        if value.kind == ElemKind.FLOAT:
            return CVal(abs(value.value), value.width, value.kind)
        return CVal(abs(int(value.value))
                    if int(value.value) != -(1 << (value.width - 1))
                    else int(value.value),
                    value.width, ElemKind.SIGNED)
    if base == "SELECT":
        cond = _as_cval(args[0])
        chosen = args[1] if _truthy(cond) else args[2]
        return _as_cval(chosen)
    if base in ("SIGNED", "UNSIGNED"):
        value = _as_cval(args[0])
        if value.kind == ElemKind.FLOAT:
            raise PseudocodeSemanticsError(f"{base} on a float value")
        bits = _value_to_bits(value)
        kind = ElemKind.SIGNED if base == "SIGNED" else ElemKind.UNSIGNED
        return CVal(_bits_to_value(bits, value.width, kind),
                    value.width, kind)
    if base in ("MIN", "MAX"):
        a, b = _as_cval(args[0]), _as_cval(args[1])
        pick_min = base == "MIN"
        if ElemKind.FLOAT in (a.kind, b.kind):
            # Mirror the symbolic semantics ``a < b ? a : b`` (resp. >) so
            # NaN comparisons fall through to the second operand.
            take_first = (a.value < b.value) if pick_min \
                else (a.value > b.value)
            return a if take_first else b
        av, bv = int(a.value), int(b.value)
        take_first = (av < bv) if pick_min else (av > bv)
        chosen = a if take_first else b
        width = max(a.width, b.width)
        signed = ElemKind.SIGNED in (a.kind, b.kind)
        kind = ElemKind.SIGNED if signed else ElemKind.UNSIGNED
        return CVal(int(chosen.value), width, kind)
    raise PseudocodeSemanticsError(f"unknown function {name!r}")
