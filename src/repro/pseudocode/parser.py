"""Recursive-descent parser for the pseudocode language."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.pseudocode.ast import (
    Assign,
    BinExpr,
    Call,
    Expr,
    FNum,
    ForStmt,
    FuncDef,
    IfStmt,
    Num,
    OutputSpec,
    ParamSpec,
    Ref,
    ReturnStmt,
    SliceExpr,
    Spec,
    Stmt,
    UnExpr,
)
from repro.pseudocode.lexer import PseudocodeSyntaxError, Token, tokenize

_KIND_WIDTH_RE = re.compile(r"^(?P<kind>[suf])(?P<width>\d+)$")

# Binary operator precedence, lowest first.
_PRECEDENCE: List[Tuple[str, ...]] = [
    ("OR",),
    ("XOR",),
    ("AND",),
    ("==", "!=", "<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

# Newlines directly after these operator texts are line continuations.
_CONTINUATION_OPS = {
    ":=", "+", "-", "*", "/", "%", "<<", ">>", "==", "!=", "<=", ">=",
    "<", ">", "(", "[", ",", "{",
}
_CONTINUATION_KWS = {"AND", "OR", "XOR", "NOT", "TO", "ELSE"}


def _prepare(tokens: List[Token]) -> List[Token]:
    """Drop newline tokens inside brackets or after a trailing operator."""
    out: List[Token] = []
    depth = 0
    for tok in tokens:
        if tok.kind == "op" and tok.text in "([{":
            depth += 1
        elif tok.kind == "op" and tok.text in ")]}":
            depth = max(0, depth - 1)
        if tok.kind == "newline":
            if depth > 0:
                continue
            if out and out[-1].kind == "op" and out[-1].text in _CONTINUATION_OPS:
                continue
            if out and out[-1].kind == "kw" and out[-1].text in _CONTINUATION_KWS:
                continue
            if not out or out[-1].kind == "newline":
                continue
        out.append(tok)
    return out


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = _prepare(tokens)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise PseudocodeSyntaxError(
                f"line {tok.line}: expected {want!r}, got {tok.text!r}"
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.accept("newline"):
            pass

    # -- spec ------------------------------------------------------------------

    def parse_spec(self) -> Spec:
        self.skip_newlines()
        name = self.expect("name").text
        self.expect("op", "(")
        params: List[ParamSpec] = []
        if not self.check("op", ")"):
            while True:
                params.append(self._parse_param())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        self.expect("op", "->")
        lanes, width, kind = self._parse_shape()
        output = OutputSpec(lanes, width, kind)
        self.expect("newline")
        functions = {}
        while True:
            self.skip_newlines()
            if self.check("kw", "DEFINE"):
                fn = self._parse_funcdef()
                functions[fn.name] = fn
            else:
                break
        body = self._parse_stmts(until=("eof",))
        self.expect("eof")
        if not body:
            raise PseudocodeSyntaxError(f"{name}: empty body")
        return Spec(name, params, output, body, functions)

    def _parse_param(self) -> ParamSpec:
        name = self.expect("name").text
        self.expect("op", ":")
        lanes, width, kind = self._parse_shape()
        return ParamSpec(name, lanes, width, kind)

    def _parse_shape(self) -> Tuple[int, int, str]:
        lanes = int(self.expect("int").text)
        x = self.expect("name")
        if x.text != "x":
            raise PseudocodeSyntaxError(
                f"line {x.line}: expected 'x' in shape, got {x.text!r}"
            )
        kw = self.expect("name")
        m = _KIND_WIDTH_RE.match(kw.text)
        if m is None:
            raise PseudocodeSyntaxError(
                f"line {kw.line}: bad element type {kw.text!r} "
                "(expected e.g. s16, u8, f32)"
            )
        return lanes, int(m.group("width")), m.group("kind")

    def _parse_funcdef(self) -> FuncDef:
        self.expect("kw", "DEFINE")
        name = self.expect("name").text
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            while True:
                params.append(self.expect("name").text)
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        self.expect("op", "{")
        self.skip_newlines()
        body = self._parse_stmts(until=("}",))
        self.expect("op", "}")
        return FuncDef(name, tuple(params), tuple(body))

    # -- statements ----------------------------------------------------------------

    def _parse_stmts(self, until: Tuple[str, ...]) -> List[Stmt]:
        stmts: List[Stmt] = []
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.kind == "eof" and "eof" in until:
                break
            if tok.kind == "op" and tok.text in until:
                break
            if tok.kind == "kw" and tok.text in until:
                break
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> Stmt:
        if self.check("kw", "FOR"):
            return self._parse_for()
        if self.check("kw", "IF"):
            return self._parse_if()
        if self.accept("kw", "RETURN"):
            value = self._parse_expr()
            return ReturnStmt(value)
        target = self._parse_primary()
        if not isinstance(target, (Ref, SliceExpr)):
            raise PseudocodeSyntaxError("assignment target must be a "
                                        "variable or slice")
        self.expect("op", ":=")
        value = self._parse_expr()
        return Assign(target, value)

    def _parse_for(self) -> ForStmt:
        self.expect("kw", "FOR")
        var = self.expect("name").text
        self.expect("op", ":=")
        lo = self._parse_expr()
        self.expect("kw", "TO")
        hi = self._parse_expr()
        self.expect("newline")
        body = self._parse_stmts(until=("ENDFOR",))
        self.expect("kw", "ENDFOR")
        return ForStmt(var, lo, hi, tuple(body))

    def _parse_if(self) -> IfStmt:
        self.expect("kw", "IF")
        cond = self._parse_expr()
        self.expect("newline")
        then_body = self._parse_stmts(until=("ELSE", "FI"))
        else_body: List[Stmt] = []
        if self.accept("kw", "ELSE"):
            else_body = self._parse_stmts(until=("FI",))
        self.expect("kw", "FI")
        return IfStmt(cond, tuple(then_body), tuple(else_body))

    # -- expressions ------------------------------------------------------------------

    def _parse_expr(self, level: int = 0) -> Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        lhs = self._parse_expr(level + 1)
        ops = _PRECEDENCE[level]
        while True:
            tok = self.peek()
            text = tok.text
            if tok.kind == "kw" and text in ops:
                self.advance()
            elif tok.kind == "op" and text in ops:
                self.advance()
            else:
                return lhs
            rhs = self._parse_expr(level + 1)
            lhs = BinExpr(text, lhs, rhs)

    def _parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            return UnExpr("-", self._parse_unary())
        if self.accept("op", "~") or self.accept("kw", "NOT"):
            return UnExpr("NOT", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return Num(int(tok.text))
        if tok.kind == "float":
            self.advance()
            return FNum(float(tok.text))
        if self.accept("op", "("):
            expr = self._parse_expr()
            self.expect("op", ")")
            return expr
        if tok.kind == "name":
            self.advance()
            name = tok.text
            if self.accept("op", "("):
                args: List[Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return Call(name, tuple(args))
            if self.accept("op", "["):
                hi = self._parse_expr()
                self.expect("op", ":")
                lo = self._parse_expr()
                self.expect("op", "]")
                return SliceExpr(name, hi, lo)
            return Ref(name)
        raise PseudocodeSyntaxError(
            f"line {tok.line}: unexpected token {tok.text!r}"
        )


def parse_spec(source: str) -> Spec:
    """Parse a complete instruction spec from source text."""
    return _Parser(tokenize(source)).parse_spec()


def parse_statements(source: str) -> List[Stmt]:
    """Parse a bare statement list (used by unit tests)."""
    parser = _Parser(tokenize(source))
    stmts = parser._parse_stmts(until=("eof",))
    parser.expect("eof")
    return stmts
