"""Tokenizer for the pseudocode language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


class PseudocodeSyntaxError(ValueError):
    """Raised on malformed pseudocode."""


KEYWORDS = {
    "FOR", "TO", "ENDFOR", "IF", "ELSE", "FI", "DEFINE", "RETURN",
    "AND", "OR", "XOR", "NOT",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<newline>\n)
  | (?P<float>\d+\.\d+)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>:=|<<|>>|==|!=|<=|>=|->|[-+*/%()\[\]{}:,<>~])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'int' | 'float' | 'name' | 'kw' | 'op' | 'newline' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Split source into tokens; newlines are significant (statement ends)."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise PseudocodeSyntaxError(
                f"line {line}: cannot tokenize {source[pos:pos + 10]!r}"
            )
        pos = m.end()
        kind = m.lastgroup
        text = m.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "newline":
            if tokens and tokens[-1].kind != "newline":
                tokens.append(Token("newline", "\n", line))
            line += 1
            continue
        if kind == "hex":
            tokens.append(Token("int", str(int(text, 16)), line))
            continue
        if kind == "name":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("kw", upper, line))
            else:
                tokens.append(Token("name", text, line))
            continue
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
