"""Render a :class:`VectorProgram` as compilable C intrinsics source.

The emitter walks the scheduled vector program in order and assigns one
C local per node (``v0, v1, ...`` for vectors, ``s0, s1, ...`` for
scalars), so the output reads like the program dump with real types and
real intrinsics.  Per-family conventions (vector C types, load/store
intrinsics, lane reads) are the *only* family-specific code in the
whole pipeline; everything upstream is ISA-agnostic.

Only shapes the bundled families can express are supported; anything
else (an instruction without intrinsic metadata, an ``i1`` mask gather,
an unresolvable pointer) raises :class:`EmitError` rather than emitting
wrong C.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.ir.instructions import (
    FCmpInst,
    ICmpInst,
    Instruction,
    Opcode,
    pointer_base_and_offset,
)
from repro.ir.types import FloatType, IntType, Type, scalar_bit_width
from repro.ir.values import Argument, Constant, Value
from repro.target.isa import TargetDesc
from repro.vectorizer.vector_ir import (
    ElementSource,
    VectorProgram,
    VExtract,
    VGather,
    VLoad,
    VNode,
    VOp,
    VScalar,
    VStore,
)


class EmitError(ValueError):
    """The program contains a shape the C emitter cannot render."""


#: family -> default C header (matches the family modules' headers; kept
#: here so artifact-loaded targets emit without the family registry).
_FAMILY_HEADERS = {"x86": "immintrin.h", "neon": "arm_neon.h"}


def _scalar_ctype(ty: Type, unsigned: bool = False) -> str:
    """The C spelling of a scalar IR type."""
    if isinstance(ty, IntType):
        if ty.width == 1:
            return "int"
        if ty.width not in (8, 16, 32, 64):
            raise EmitError(f"no C type for {ty}")
        return f"{'u' if unsigned else ''}int{ty.width}_t"
    if isinstance(ty, FloatType):
        return "float" if ty.width == 32 else "double"
    raise EmitError(f"no C type for {ty}")


def _neon_suffix(ty: Type) -> str:
    """ACLE type suffix (``s16``, ``f32``, ...)."""
    kind = "f" if ty.is_float else "s"
    return f"{kind}{scalar_bit_width(ty)}"


class CEmitter:
    """Stateful single-program emitter.  Use :func:`emit_c` normally."""

    def __init__(self, program: VectorProgram, target: TargetDesc):
        self.program = program
        self.target = target
        self.family = target.family
        if self.family not in _FAMILY_HEADERS:
            raise EmitError(f"no C conventions for ISA family "
                            f"{self.family!r}")
        self.lines: List[str] = []
        self._counter = 0
        #: id(VNode) -> (C var name, lanes, elem Type, is_array)
        #: ``is_array`` marks virtual vectors wider than the target's
        #: registers, held as C arrays instead (lane reads index them).
        self._vnode: Dict[int, Tuple[str, int, Type, bool]] = {}
        #: id(IR Value) -> C expression for it
        self._value: Dict[int, str] = {}
        #: Widest register the target actually has.  Load/gather packs
        #: may be wider than any instruction (virtual shuffles bridge
        #: them); such nodes fall back to plain arrays.
        self._max_bits = max(
            (inst.num_lanes *
             scalar_bit_width(inst.desc.out_elem_type)
             for inst in target.instructions),
            default=128,
        )
        self._max_bits = max(self._max_bits, 128)

    # -- naming / value rendering ---------------------------------------

    def _fresh(self, prefix: str) -> str:
        name = f"{prefix}{self._counter}"
        self._counter += 1
        return name

    def _const_expr(self, const: Constant) -> str:
        ty = const.type
        if isinstance(ty, IntType):
            value = const.signed_value()
            return f"{value}ll" if ty.width == 64 else str(value)
        value = const.value
        if math.isnan(value) or math.isinf(value):
            raise EmitError(f"cannot render float constant {value!r}")
        text = repr(float(value))
        return f"{text}f" if ty.width == 32 else text

    def _value_expr(self, value: Value) -> str:
        if isinstance(value, Constant):
            return self._const_expr(value)
        expr = self._value.get(id(value))
        if expr is None:
            if isinstance(value, Argument):
                return value.name
            raise EmitError(
                f"scalar value {value.short_name()} has no C definition"
            )
        return expr

    # -- per-family vector conventions ----------------------------------

    def _vector_ctype(self, lanes: int, elem: Type) -> str:
        if isinstance(elem, IntType) and elem.width == 1:
            raise EmitError("i1 mask vectors have no C type")
        bits = lanes * scalar_bit_width(elem)
        if self.family == "neon":
            if bits not in (64, 128):
                raise EmitError(f"no NEON register for {lanes}x{elem}")
            kind = "float" if elem.is_float else "int"
            return f"{kind}{scalar_bit_width(elem)}x{lanes}_t"
        # x86: sub-128-bit programs live in the low half of an xmm.
        if bits <= 128:
            width = ""
        elif bits == 256:
            width = "256"
        elif bits == 512:
            width = "512"
        else:
            raise EmitError(f"no x86 register for {lanes}x{elem}")
        if elem.is_float:
            return f"__m{width or '128'}{'d' if elem.width == 64 else ''}"
        return f"__m{width or '128'}i"

    def _mm(self, bits: int) -> str:
        """x86 intrinsic prefix for a register width."""
        return {128: "_mm", 256: "_mm256", 512: "_mm512"}[max(bits, 128)]

    def _load_expr(self, base: str, lanes: int, elem: Type) -> str:
        bits = lanes * scalar_bit_width(elem)
        if self.family == "neon":
            q = "q" if bits == 128 else ""
            return f"vld1{q}_{_neon_suffix(elem)}({base})"
        mm = self._mm(bits)
        if elem.is_float:
            sfx = "pd" if elem.width == 64 else "ps"
            return f"{mm}_loadu_{sfx}({base})"
        if bits <= 64:
            return f"_mm_loadl_epi64((const __m128i *)({base}))"
        if bits == 512:
            return f"_mm512_loadu_si512({base})"
        return f"{mm}_loadu_si{bits}((const __m{bits}i *)({base}))"

    def _store_stmt(self, base: str, source: str, lanes: int,
                    elem: Type) -> str:
        bits = lanes * scalar_bit_width(elem)
        if self.family == "neon":
            q = "q" if bits == 128 else ""
            return f"vst1{q}_{_neon_suffix(elem)}({base}, {source});"
        mm = self._mm(bits)
        if elem.is_float:
            sfx = "pd" if elem.width == 64 else "ps"
            return f"{mm}_storeu_{sfx}({base}, {source});"
        if bits <= 64:
            return f"_mm_storel_epi64((__m128i *)({base}), {source});"
        if bits == 512:
            return f"_mm512_storeu_si512({base}, {source});"
        return f"{mm}_storeu_si{bits}((__m{bits}i *)({base}), {source});"

    def _broadcast_expr(self, scalar: str, lanes: int, elem: Type) -> str:
        bits = lanes * scalar_bit_width(elem)
        if self.family == "neon":
            q = "q" if bits == 128 else ""
            return f"vdup{q}_n_{_neon_suffix(elem)}({scalar})"
        mm = self._mm(bits)
        if elem.is_float:
            sfx = "pd" if elem.width == 64 else "ps"
            return f"{mm}_set1_{sfx}({scalar})"
        sfx = {8: "epi8", 16: "epi16", 32: "epi32",
               64: "epi64x" if bits <= 128 else "epi64"}[elem.width]
        return f"{mm}_set1_{sfx}({scalar})"

    def _lane_expr(self, node: VNode, lane: int) -> str:
        var, lanes, elem, is_array = self._vnode[id(node)]
        if is_array:
            return f"{var}[{lane}]"
        if self.family == "neon":
            bits = lanes * scalar_bit_width(elem)
            q = "q" if bits == 128 else ""
            return f"vget{q}_lane_{_neon_suffix(elem)}({var}, {lane})"
        return f"(((const {_scalar_ctype(elem)} *)&{var})[{lane}])"

    # -- node emission ---------------------------------------------------

    def _bind(self, node: VNode, var: str, lanes: int, elem: Type,
              is_array: bool = False) -> None:
        self._vnode[id(node)] = (var, lanes, elem, is_array)

    def _pointer(self, base: Argument, offset: int) -> str:
        return base.name if offset == 0 else f"{base.name} + {offset}"

    def _too_wide(self, lanes: int, elem: Type) -> bool:
        return lanes * scalar_bit_width(elem) > self._max_bits

    def _emit_vload(self, node: VLoad) -> None:
        var = self._fresh("v")
        ptr = self._pointer(node.base, node.offset)
        if self._too_wide(node.lanes, node.elem_type):
            # Wider than any register: keep a pointer view; lane reads
            # index memory directly.
            self.lines.append(
                f"const {_scalar_ctype(node.elem_type)} *{var} = {ptr};"
            )
            self._bind(node, var, node.lanes, node.elem_type,
                       is_array=True)
            return
        ctype = self._vector_ctype(node.lanes, node.elem_type)
        self.lines.append(
            f"{ctype} {var} = "
            f"{self._load_expr(ptr, node.lanes, node.elem_type)};"
        )
        self._bind(node, var, node.lanes, node.elem_type)

    def _emit_vstore(self, node: VStore) -> None:
        src = self._vnode.get(id(node.source))
        if src is None:
            raise EmitError("vstore of an unemitted source")
        if src[3]:  # array-held source: elementwise stores
            for lane in range(node.lanes):
                self.lines.append(
                    f"{node.base.name}[{node.offset + lane}] = "
                    f"{src[0]}[{lane}];"
                )
            return
        ptr = self._pointer(node.base, node.offset)
        self.lines.append(
            self._store_stmt(ptr, src[0], node.lanes, node.elem_type)
        )

    def _source_expr(self, source: ElementSource) -> str:
        if source.kind == "lane":
            return self._lane_expr(source.node, source.lane)
        if source.kind == "scalar":
            return self._value_expr(source.value)
        if source.kind == "const":
            return self._const_expr(source.value)
        return "0"  # undef lane: any value is correct

    def _emit_vgather(self, node: VGather) -> None:
        elem = node.elem_type
        var = self._fresh("v")
        if self._too_wide(node.lanes, elem):
            # Wider than any register: a plain stack array (its only
            # consumers are lane reads, element stores, and extracts).
            init = ", ".join(self._source_expr(s) for s in node.sources)
            self.lines.append(
                f"const {_scalar_ctype(elem)} {var}[{node.lanes}] = "
                f"{{{init}}};"
            )
            self._bind(node, var, node.lanes, elem, is_array=True)
            return
        ctype = self._vector_ctype(node.lanes, elem)
        shape = node.classify()
        if shape == "broadcast":
            scalar = self._source_expr(
                next(s for s in node.sources if s.kind != "undef")
            )
            self.lines.append(
                f"{ctype} {var} = "
                f"{self._broadcast_expr(scalar, node.lanes, elem)};"
            )
        else:
            # General shape: materialize the lanes into a stack array
            # and load it (the portable spelling of set/insert chains).
            init = ", ".join(self._source_expr(s) for s in node.sources)
            arr = f"{var}_init"
            self.lines.append(
                f"const {_scalar_ctype(elem)} {arr}[{node.lanes}] = "
                f"{{{init}}};"
            )
            self.lines.append(
                f"{ctype} {var} = "
                f"{self._load_expr(arr, node.lanes, elem)};"
            )
        self._bind(node, var, node.lanes, elem)

    def _imm_expr(self, operand: VNode) -> str:
        """An immediate operand must be a known constant vector."""
        if isinstance(operand, VGather):
            consts = {
                s.value.signed_value()
                for s in operand.sources
                if s.kind == "const"
            }
            if len(consts) == 1 and all(
                s.kind in ("const", "undef") for s in operand.sources
            ):
                return str(consts.pop())
        raise EmitError(
            "immediate operand is not a uniform constant vector"
        )

    def _emit_vop(self, node: VOp) -> None:
        inst = node.inst
        if inst.intrinsic is None:
            raise EmitError(
                f"{inst.name} has no intrinsic metadata (model-only)"
            )
        args = []
        for index, operand in enumerate(node.operands):
            if inst.imm_operand == index:
                args.append(self._imm_expr(operand))
                continue
            bound = self._vnode.get(id(operand))
            if bound is None:
                raise EmitError(f"{inst.name} operand {index} unemitted")
            if bound[3]:
                raise EmitError(
                    f"{inst.name} operand {index} is wider than any "
                    f"{self.family} register"
                )
            args.append(bound[0])
        if "{" in inst.intrinsic:
            call = inst.intrinsic.format(*args)
        else:
            call = f"{inst.intrinsic}({', '.join(args)})"
        out_elem = inst.desc.out_elem_type
        lanes = inst.num_lanes
        if isinstance(out_elem, IntType) and out_elem.width == 1:
            # Mask-producing ops (pcmpgt): the result register has the
            # shape of the compared operands.
            ref = self._vnode.get(id(node.operands[0]))
            if ref is None:
                raise EmitError(f"{inst.name}: untyped mask result")
            _, lanes, out_elem, _ = ref
        var = self._fresh("v")
        ctype = self._vector_ctype(lanes, out_elem)
        self.lines.append(f"{ctype} {var} = {call};")
        self._bind(node, var, lanes, out_elem)

    def _emit_vextract(self, node: VExtract) -> None:
        if id(node.source) not in self._vnode:
            raise EmitError("vextract of an unemitted source")
        var = self._fresh("s")
        _, _, elem, _ = self._vnode[id(node.source)]
        expr = self._lane_expr(node.source, node.lane)
        self.lines.append(f"{_scalar_ctype(elem)} {var} = {expr};")
        self._value[id(node.value)] = var

    # -- scalar statement emission ---------------------------------------

    _INT_OPS = {
        Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*",
        Opcode.SDIV: "/", Opcode.SREM: "%",
        Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^",
        Opcode.SHL: "<<", Opcode.ASHR: ">>",
    }
    _FLOAT_OPS = {
        Opcode.FADD: "+", Opcode.FSUB: "-",
        Opcode.FMUL: "*", Opcode.FDIV: "/",
    }
    _ICMP = {
        "eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
        "sgt": ">", "sge": ">=", "ult": "<", "ule": "<=",
        "ugt": ">", "uge": ">=",
    }
    _FCMP = {
        "oeq": "==", "one": "!=", "olt": "<", "ole": "<=",
        "ogt": ">", "oge": ">=",
    }

    def _scalar_expr(self, inst: Instruction) -> str:
        op = inst.opcode
        ops = [self._value_expr(o) for o in inst.operands]
        ty = inst.type
        if op in self._INT_OPS or op in self._FLOAT_OPS:
            sym = self._INT_OPS.get(op) or self._FLOAT_OPS[op]
            expr = f"{ops[0]} {sym} {ops[1]}"
            if isinstance(ty, IntType) and ty.width < 32:
                # The model wraps at the lane width; C promotes to int.
                expr = f"({_scalar_ctype(ty)})({expr})"
            return expr
        if op in (Opcode.LSHR, Opcode.UDIV, Opcode.UREM):
            sym = {Opcode.LSHR: ">>", Opcode.UDIV: "/",
                   Opcode.UREM: "%"}[op]
            u = _scalar_ctype(ty, unsigned=True)
            return (f"({_scalar_ctype(ty)})"
                    f"((({u}){ops[0]}) {sym} {ops[1]})")
        if op == Opcode.FNEG:
            return f"-{ops[0]}"
        if op == Opcode.SEXT or op == Opcode.TRUNC:
            return f"({_scalar_ctype(ty)}){ops[0]}"
        if op == Opcode.ZEXT:
            src = _scalar_ctype(inst.operands[0].type, unsigned=True)
            return f"({_scalar_ctype(ty)})(({src}){ops[0]})"
        if op in (Opcode.FPEXT, Opcode.FPTRUNC, Opcode.SITOFP,
                  Opcode.FPTOSI):
            return f"({_scalar_ctype(ty)}){ops[0]}"
        if op == Opcode.ICMP:
            assert isinstance(inst, ICmpInst)
            sym = self._ICMP[inst.pred]
            if inst.pred.startswith("u"):
                u = _scalar_ctype(inst.operands[0].type, unsigned=True)
                return f"(({u}){ops[0]}) {sym} (({u}){ops[1]})"
            return f"{ops[0]} {sym} {ops[1]}"
        if op == Opcode.FCMP:
            assert isinstance(inst, FCmpInst)
            return f"{ops[0]} {self._FCMP[inst.pred]} {ops[1]}"
        if op == Opcode.SELECT:
            return f"{ops[0]} ? {ops[1]} : {ops[2]}"
        raise EmitError(f"no C rendering for scalar opcode {op!r}")

    def _emit_vscalar(self, node: VScalar) -> None:
        inst = node.inst
        op = inst.opcode
        if op == Opcode.GEP:
            return  # folded into load/store pointer expressions
        if op == Opcode.RET:
            value = inst.return_value
            if value is not None:
                self.lines.append(f"return {self._value_expr(value)};")
            return
        if op == Opcode.LOAD:
            base, offset = pointer_base_and_offset(inst.pointer)
            if base is None:
                raise EmitError("load from unresolvable pointer")
            var = self._fresh("s")
            self.lines.append(
                f"{_scalar_ctype(inst.type)} {var} = "
                f"{base.name}[{offset}];"
            )
            self._value[id(inst)] = var
            return
        if op == Opcode.STORE:
            base, offset = pointer_base_and_offset(inst.pointer)
            if base is None:
                raise EmitError("store to unresolvable pointer")
            self.lines.append(
                f"{base.name}[{offset}] = "
                f"{self._value_expr(inst.value)};"
            )
            return
        expr = self._scalar_expr(inst)
        var = self._fresh("s")
        self.lines.append(f"{_scalar_ctype(inst.type)} {var} = {expr};")
        self._value[id(inst)] = var

    # -- whole-program emission ------------------------------------------

    def _signature(self) -> str:
        func = self.program.function
        params = []
        for arg in func.args:
            if arg.type.is_pointer:
                params.append(
                    f"{_scalar_ctype(arg.type.pointee)} *{arg.name}"
                )
            else:
                params.append(f"{_scalar_ctype(arg.type)} {arg.name}")
        ret = ("void" if func.return_type.is_void
               else _scalar_ctype(func.return_type))
        return f"{ret} {func.name}({', '.join(params)})"

    def _headers(self) -> List[str]:
        headers = {_FAMILY_HEADERS[self.family]}
        for vop in self.program.vector_ops():
            if vop.inst.header is not None:
                headers.add(vop.inst.header)
        return ["stdint.h"] + sorted(headers)

    def emit(self) -> str:
        for node in self.program.nodes:
            if isinstance(node, VLoad):
                self._emit_vload(node)
            elif isinstance(node, VGather):
                self._emit_vgather(node)
            elif isinstance(node, VOp):
                self._emit_vop(node)
            elif isinstance(node, VStore):
                self._emit_vstore(node)
            elif isinstance(node, VExtract):
                self._emit_vextract(node)
            elif isinstance(node, VScalar):
                self._emit_vscalar(node)
            else:
                raise EmitError(f"unknown node {node!r}")
        includes = "\n".join(f"#include <{h}>" for h in self._headers())
        body = "\n".join(f"    {line}" for line in self.lines)
        return (
            f"/* generated by repro.emit for target "
            f"{self.target.name} ({self.family}) */\n"
            f"{includes}\n\n"
            f"{self._signature()} {{\n{body}\n}}\n"
        )


def emit_c(program: VectorProgram, target: TargetDesc) -> str:
    """Render ``program`` as C source for ``target``.

    Raises :class:`EmitError` when the program uses a shape or an
    instruction the emitter cannot express in C.
    """
    return CEmitter(program, target).emit()
