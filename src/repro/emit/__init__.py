"""C intrinsics emission: render vector programs as compilable source.

The online vectorizer's output (:class:`repro.vectorizer.VectorProgram`)
is target-instruction-accurate but lives in the model world.  This
package turns it into real, compilable C: every :class:`VOp` becomes a
call to the vendor intrinsic recorded in the target artifact's v2
metadata (``_mm_madd_epi16``, ``vmlaq_s32``, ...), loads/stores/gathers
become the family's memory intrinsics, and uncovered scalar IR becomes
plain C statements.  Formatting follows BLAZE's ``SIMDCodeGen`` idiom
(SNIPPETS.md §3): one SSA-style local per node, intrinsic names straight
from the spec metadata.
"""

from repro.emit.c_emitter import CEmitter, EmitError, emit_c

__all__ = ["CEmitter", "EmitError", "emit_c"]
