"""IEEE-754 helpers for the interpreters.

Float lanes are stored as Python floats.  32-bit lanes are rounded through
IEEE binary32 after every operation so that the scalar interpreter, the
pseudocode interpreter, and the VIDL interpreter all agree bit-for-bit.
"""

from __future__ import annotations

import struct


def round_to_float32(value: float) -> float:
    """Round a Python float (binary64) to the nearest binary32 value.

    Values outside the binary32 range overflow to infinity, per IEEE-754
    round-to-nearest (struct.pack raises on those, so clamp first).
    """
    if value != value or value in (float("inf"), float("-inf")):
        return value
    if value >= _FLOAT32_MAX_ROUND:
        return float("inf")
    if value <= -_FLOAT32_MAX_ROUND:
        return float("-inf")
    return struct.unpack("<f", struct.pack("<f", value))[0]


# Largest double that rounds to a finite binary32 (midpoint of f32 max and
# the next representable step).
_FLOAT32_MAX_ROUND = (2.0 - 2.0 ** -24) * 2.0 ** 127


def round_to_width(value: float, width: int) -> float:
    """Round ``value`` to the float format of the given bit width (32/64)."""
    if width == 32:
        return round_to_float32(value)
    if width == 64:
        return float(value)
    raise ValueError(f"unsupported float width: {width}")


def float_to_bits(value: float, width: int) -> int:
    """Reinterpret a float as its unsigned bit pattern."""
    if width == 32:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    if width == 64:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    raise ValueError(f"unsupported float width: {width}")


def float_from_bits(bits: int, width: int) -> float:
    """Reinterpret an unsigned bit pattern as a float."""
    if width == 32:
        return struct.unpack("<f", struct.pack("<I", bits))[0]
    if width == 64:
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    raise ValueError(f"unsupported float width: {width}")
