"""Two's-complement fixed-width integer arithmetic helpers.

Every integer value in the reproduction (scalar IR interpreter, bitvector
evaluator, pseudocode interpreter, VIDL interpreter) is stored as an
*unsigned* Python int in ``[0, 2**width)``.  Signedness is a property of the
operation, not the value, exactly as in LLVM IR and in SMT bitvector
semantics.  These helpers implement the conversions.
"""

from __future__ import annotations


def mask(value: int, width: int) -> int:
    """Wrap ``value`` to an unsigned ``width``-bit integer."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit integer as two's complement."""
    value = mask(value, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Interpret a possibly-negative Python int as unsigned ``width``-bit."""
    return mask(value, width)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend an unsigned ``from_width``-bit value to ``to_width`` bits."""
    if to_width < from_width:
        raise ValueError(
            f"cannot sign-extend from {from_width} to narrower {to_width}"
        )
    return mask(to_signed(value, from_width), to_width)


def zero_extend(value: int, from_width: int, to_width: int) -> int:
    """Zero-extend an unsigned ``from_width``-bit value to ``to_width`` bits."""
    if to_width < from_width:
        raise ValueError(
            f"cannot zero-extend from {from_width} to narrower {to_width}"
        )
    return mask(value, from_width)


def truncate(value: int, to_width: int) -> int:
    """Truncate a value to its low ``to_width`` bits."""
    return mask(value, to_width)


def saturate_signed(value: int, width: int) -> int:
    """Clamp a (signed, arbitrary-precision) value into signed ``width``-bit
    range and return the unsigned representation."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if value < lo:
        value = lo
    elif value > hi:
        value = hi
    return mask(value, width)


def saturate_unsigned(value: int, width: int) -> int:
    """Clamp a (signed, arbitrary-precision) value into unsigned ``width``-bit
    range."""
    hi = (1 << width) - 1
    if value < 0:
        return 0
    if value > hi:
        return hi
    return value
