"""Shared low-level helpers used across the repro packages."""

from repro.utils.intmath import (
    mask,
    to_signed,
    to_unsigned,
    sign_extend,
    zero_extend,
    truncate,
    saturate_signed,
    saturate_unsigned,
)
from repro.utils.fp import round_to_float32, float_from_bits, float_to_bits

__all__ = [
    "mask",
    "to_signed",
    "to_unsigned",
    "sign_extend",
    "zero_extend",
    "truncate",
    "saturate_signed",
    "saturate_unsigned",
    "round_to_float32",
    "float_from_bits",
    "float_to_bits",
]
