"""Request/response protocol for the compile server.

A compile request is one JSON object::

    {"source": "...", "lang": "c" | "ir", "target": "avx2",
     "function": "dot",          # required when a C file has >1 function
     "config": {"beam_width": 8, ...},   # partial VectorizerConfig
     "timeout_s": 10.0,                  # per-request deadline
     "fault": "crash" | "hang" | "error"}  # test harness only

The server canonicalizes the program text before anything else: the
source is parsed (mini-C is lowered) and the function re-printed through
:func:`repro.ir.printer.print_function`, so two requests that differ
only in whitespace/comments/variable spelling of the same IR hash to the
same cache key.

A compile response body is deterministic — it carries model costs, the
emitted program text, and the per-request pipeline counters, but never
wall times or timestamps — which is what lets the content-addressed
cache store the serialized bytes and replay them byte-identically.
Cache status travels in the ``X-Repro-Cache`` header, never the body.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.vectorizer.context import VectorizerConfig

#: Response body schema; bump on any breaking change.
RESPONSE_SCHEMA = "repro-serve-response/v1"

#: Faults the in-worker injection layer understands (harness only).
FAULT_KINDS = ("crash", "hang", "error")


class RequestError(ValueError):
    """A malformed compile request; maps to an HTTP 4xx."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class CompileRequest:
    """A validated, canonicalized compile request."""

    canonical_ir: str
    target: str
    config: VectorizerConfig
    function_name: str
    timeout_s: Optional[float] = None
    fault: Optional[str] = None
    config_overrides: Dict[str, object] = field(default_factory=dict)


def canonicalize_source(source: str, lang: str,
                        function: Optional[str] = None
                        ) -> Tuple[str, str]:
    """Parse ``source`` and return ``(canonical_ir, function_name)``.

    The canonical form is the IR printer's output for the parsed
    function: stable whitespace, stable value numbering for mini-C
    input, and a parse failure here (not in a worker) for garbage.
    """
    from repro.ir.printer import print_function

    if lang == "ir":
        from repro.ir.parser import parse_function

        try:
            fn = parse_function(source)
        except Exception as exc:
            raise RequestError(f"IR parse error: {exc}") from exc
    elif lang == "c":
        from repro.frontend import compile_c

        try:
            functions = compile_c(source)
        except Exception as exc:
            raise RequestError(f"mini-C compile error: {exc}") from exc
        if not functions:
            raise RequestError("source contains no functions")
        if function is not None:
            matches = [f for f in functions if f.name == function]
            if not matches:
                raise RequestError(
                    f"no function {function!r} in source; found: "
                    f"{', '.join(f.name for f in functions)}"
                )
            fn = matches[0]
        elif len(functions) == 1:
            fn = functions[0]
        else:
            raise RequestError(
                "source contains multiple functions; pass 'function' "
                f"to pick one of: {', '.join(f.name for f in functions)}"
            )
    else:
        raise RequestError(f"unknown lang {lang!r}; expected 'c' or 'ir'")
    return print_function(fn), fn.name


def parse_compile_request(payload: Dict, *,
                          default_timeout_s: Optional[float] = None,
                          max_timeout_s: Optional[float] = None,
                          allow_faults: bool = False,
                          default_config: Optional[VectorizerConfig] = None,
                          ) -> CompileRequest:
    """Validate a decoded JSON payload into a :class:`CompileRequest`."""
    from repro.target import available_targets

    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    unknown = sorted(set(payload) - {
        "source", "lang", "target", "function", "config", "timeout_s",
        "fault",
    })
    if unknown:
        raise RequestError(f"unknown request fields: {', '.join(unknown)}")
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise RequestError("'source' must be a non-empty string")
    lang = payload.get("lang", "c")
    if lang not in ("c", "ir"):
        raise RequestError(f"unknown lang {lang!r}; expected 'c' or 'ir'")
    target = payload.get("target", "avx2")
    if target not in available_targets():
        raise RequestError(
            f"unknown target {target!r}; available: "
            f"{', '.join(available_targets())}"
        )
    function = payload.get("function")
    if function is not None and not isinstance(function, str):
        raise RequestError("'function' must be a string")

    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise RequestError("'config' must be a JSON object")
    base = (default_config.canonical_dict()
            if default_config is not None else {})
    try:
        config = VectorizerConfig.from_canonical_dict({**base, **overrides})
    except ValueError as exc:
        raise RequestError(f"bad config: {exc}") from exc

    timeout_s = payload.get("timeout_s", default_timeout_s)
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) or \
                isinstance(timeout_s, bool) or timeout_s <= 0:
            raise RequestError("'timeout_s' must be a positive number")
        timeout_s = float(timeout_s)
        if max_timeout_s is not None:
            timeout_s = min(timeout_s, max_timeout_s)

    fault = payload.get("fault")
    if fault is not None:
        if not allow_faults:
            raise RequestError(
                "fault injection is disabled on this server"
            )
        if fault not in FAULT_KINDS:
            raise RequestError(
                f"unknown fault {fault!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )

    canonical_ir, function_name = canonicalize_source(
        source, lang, function
    )
    return CompileRequest(
        canonical_ir=canonical_ir,
        target=target,
        config=config,
        function_name=function_name,
        timeout_s=timeout_s,
        fault=fault,
        config_overrides=dict(overrides),
    )


# -- response bodies ---------------------------------------------------


def build_response_body(request_target: str, config: VectorizerConfig,
                        cache_key: str, result,
                        counters) -> Dict:
    """The deterministic compile-response document for one result.

    Everything here is a pure function of (canonical IR, target,
    config): model costs, pack counts, program text, diagnostics, and
    the per-request pipeline counters.  Wall-clock data is deliberately
    excluded so a cached replay is byte-identical to a cold compile.
    """
    return {
        "schema": RESPONSE_SCHEMA,
        "function": result.function.name,
        "target": request_target,
        "config": config.canonical_dict(),
        "cache_key": cache_key,
        "vectorized": result.vectorized,
        "num_packs": len(result.packs),
        "scalar_cost": result.scalar_cost,
        "vector_cost": result.cost.total,
        "cost_ratio": (result.cost.total / result.scalar_cost
                       if result.scalar_cost > 0 else 1.0),
        "estimated_cost": result.estimated_cost,
        "program": result.program.dump(),
        "diagnostics": [diag.format() for diag in result.diagnostics],
        "counters": counters.as_dict(),
    }


def encode_body(body: Dict) -> bytes:
    """Canonical byte encoding for response bodies (and cache values)."""
    return (json.dumps(body, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def error_body(code: str, message: str, **extra) -> Dict:
    doc = {"error": code, "message": message}
    doc.update(extra)
    return doc


# -- error taxonomy ----------------------------------------------------

#: Structured error codes the server emits (tested contract).
ERROR_CODES = frozenset({
    "bad-request",        # 400: malformed payload / parse failure
    "not-found",          # 404: unknown route
    "overloaded",         # 429: backpressure rejection
    "timeout",            # 504: deadline exceeded, work cancelled
    "worker-crashed",     # 502: worker died mid-request (pool respawns)
    "compile-error",      # 500: the pipeline raised on this input
    "shutting-down",      # 503: server is draining
})


STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}
