"""Vectorization-as-a-service: the asyncio compile server.

Layers (each its own module, mapped to the paper's Figure-3 split in
DESIGN.md):

* :mod:`repro.serve.protocol` — request validation, IR canonicalization,
  deterministic response bodies;
* :mod:`repro.serve.cache` — content-addressed two-tier result cache
  keyed by SHA-256(canonical IR, target, config, artifact hash);
* :mod:`repro.serve.workers` — hash-sharded multi-process worker pool
  with warm sessions, batching, deadlines, and crash recovery;
* :mod:`repro.serve.server` — the HTTP front end (``/compile``,
  ``/metrics``, ``/healthz``) with backpressure;
* :mod:`repro.serve.clock` — injectable clocks/deadlines (fake-clock
  timeout tests);
* :mod:`repro.serve.fixture` — the in-process test harness and fault
  injection surface;
* :mod:`repro.serve.loadgen` — the ``repro bench --serve`` load
  generator writing ``BENCH_serve.json``.
"""

from repro.serve.cache import ResultCache, cache_key, current_artifact_hash
from repro.serve.clock import Deadline, FakeClock, MonotonicClock
from repro.serve.fixture import ServeClient, ServerFixture
from repro.serve.loadgen import (
    DEFAULT_SERVE_BENCH_PATH,
    SERVE_BENCH_SCHEMA,
    render_serve_summary,
    run_serve_bench,
    validate_serve_bench,
    write_serve_bench,
)
from repro.serve.protocol import (
    RESPONSE_SCHEMA,
    CompileRequest,
    RequestError,
    build_response_body,
    canonicalize_source,
    encode_body,
    parse_compile_request,
)
from repro.serve.server import CompileServer, ServeConfig, run_server
from repro.serve.workers import InlinePool, WorkerError, WorkerPool

__all__ = [
    "CompileRequest",
    "CompileServer",
    "DEFAULT_SERVE_BENCH_PATH",
    "Deadline",
    "FakeClock",
    "InlinePool",
    "MonotonicClock",
    "RESPONSE_SCHEMA",
    "RequestError",
    "ResultCache",
    "SERVE_BENCH_SCHEMA",
    "ServeClient",
    "ServeConfig",
    "ServerFixture",
    "WorkerError",
    "WorkerPool",
    "build_response_body",
    "cache_key",
    "canonicalize_source",
    "current_artifact_hash",
    "encode_body",
    "parse_compile_request",
    "render_serve_summary",
    "run_server",
    "run_serve_bench",
    "validate_serve_bench",
    "write_serve_bench",
]
