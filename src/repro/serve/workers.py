"""Multi-process worker pool for the compile server.

Pack selection is CPU-bound pure Python, so concurrency has to come
from processes: the pool spawns N workers, each holding warm
:class:`~repro.session.VectorizationSession` objects (one per
(target, config) it has seen), and shards requests to workers by cache
key so identical requests always land on the same warm session.

The parent side is asyncio-native: each worker has a bounded inbox
queue drained by a dispatcher task that batches adjacent requests into
one IPC round-trip (the worker runs them through
``VectorizationSession.vectorize_many``).  Deadlines flow through
:class:`repro.serve.clock.Deadline` objects against an injectable
clock; a request that exceeds its deadline gets its worker SIGKILLed
(the only way to cancel CPU-bound pure-Python work) and the pool
respawns a replacement, so no worker slot is ever leaked.  A worker
that dies mid-request (crash, OOM kill, fault injection) surfaces as a
structured ``worker-crashed`` error on the affected requests only, and
the pool respawns it likewise.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from typing import Dict, List, Optional

from repro.obs.counters import NULL_COUNTERS
from repro.serve.clock import Deadline, MonotonicClock

#: How often dispatcher tasks re-check an injectable deadline while
#: waiting on a worker (real seconds; the *decision* is clock-driven).
POLL_SLICE_S = 0.02


class WorkerError(Exception):
    """A structured request failure (maps to an HTTP error response)."""

    def __init__(self, code: str, status: int, message: str):
        super().__init__(message)
        self.code = code
        self.status = status
        self.message = message


# -- child-process side ------------------------------------------------


def _compile_batch(sessions: Dict, items: List[Dict],
                   allow_faults: bool) -> List[Dict]:
    """Compile a batch inside a worker, grouped for vectorize_many.

    Adjacent items sharing (target, config) run through one warm
    session's ``vectorize_many`` with per-item counters; each item's
    result document is identical to what a lone compile would produce.
    """
    from repro.ir.parser import parse_function
    from repro.obs.counters import Counters
    from repro.serve.protocol import build_response_body
    from repro.session import VectorizationSession
    from repro.vectorizer.context import VectorizerConfig

    out: List[Optional[Dict]] = [None] * len(items)
    index = 0
    while index < len(items):
        item = items[index]
        fault = item.get("fault")
        if fault and allow_faults:
            if fault == "crash":
                # Simulated worker death mid-request: no reply, no
                # cleanup — exactly what a segfault looks like upstream.
                os._exit(17)
            if fault == "hang":
                import time

                time.sleep(600.0)
            if fault == "error":
                out[index] = {
                    "_error": "compile-error",
                    "message": "injected fault: error",
                }
                index += 1
                continue
        group_key = (item["target"], _config_sig(item["config"]))
        group = [index]
        probe = index + 1
        while probe < len(items):
            nxt = items[probe]
            if nxt.get("fault") and allow_faults:
                break
            if (nxt["target"], _config_sig(nxt["config"])) != group_key:
                break
            group.append(probe)
            probe += 1
        config = VectorizerConfig.from_canonical_dict(
            items[group[0]]["config"]
        )
        session = sessions.get(group_key)
        if session is None:
            session = VectorizationSession(
                target=item["target"],
                beam_width=config.beam_width,
                config=config,
            )
            sessions[group_key] = session
        try:
            functions = [parse_function(items[g]["ir"]) for g in group]
            counters_list = [Counters() for _ in group]
            results = session.vectorize_many(
                functions, counters_list=counters_list
            )
            for g, result, counters in zip(group, results, counters_list):
                out[g] = build_response_body(
                    items[g]["target"], config, items[g]["key"],
                    result, counters,
                )
        except Exception as exc:  # compile failure: structured, per-item
            for g in group:
                if out[g] is None:
                    out[g] = {
                        "_error": "compile-error",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
        index = probe
    return out  # type: ignore[return-value]


def _config_sig(config_dict: Dict) -> str:
    import json

    return json.dumps(config_dict, sort_keys=True)


def _worker_main(conn, allow_faults: bool) -> None:
    """Child-process loop: recv a batch, compile, reply, repeat."""
    sessions: Dict = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg.get("kind")
        if kind == "shutdown":
            break
        if kind == "ping":
            conn.send({"id": msg.get("id"), "ok": True,
                       "pid": os.getpid()})
            continue
        if kind == "batch":
            results = _compile_batch(sessions, msg["items"], allow_faults)
            try:
                conn.send({"id": msg.get("id"), "ok": True,
                           "results": results})
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass


# -- parent side -------------------------------------------------------


class _Pending:
    __slots__ = ("item", "deadline", "future")

    def __init__(self, item: Dict, deadline: Deadline,
                 future: "asyncio.Future"):
        self.item = item
        self.deadline = deadline
        self.future = future


class _WorkerHandle:
    __slots__ = ("index", "process", "conn", "generation", "requests",
                 "crashes")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.generation = 0
        self.requests = 0
        self.crashes = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


def _mp_context():
    # Fork keeps worker start cheap (~ms, the parent's warm imports are
    # inherited); platforms without fork fall back to their default.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


class WorkerPool:
    """Hash-sharded pool of compile worker processes."""

    def __init__(self, workers: int, clock=None, counters=NULL_COUNTERS,
                 allow_faults: bool = False, queue_depth: int = 64,
                 max_batch: int = 8):
        if workers < 1:
            raise ValueError("WorkerPool needs >= 1 worker "
                             "(use InlinePool for in-process serving)")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.num_workers = workers
        self.clock = clock if clock is not None else MonotonicClock()
        self.counters = counters
        self.allow_faults = allow_faults
        self.queue_depth = queue_depth
        self.max_batch = max_batch
        self._ctx = _mp_context()
        self._handles: List[_WorkerHandle] = []
        self._inboxes: List["asyncio.Queue[_Pending]"] = []
        self._tasks: List["asyncio.Task"] = []
        self._running = False
        self.pending = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        for index in range(self.num_workers):
            handle = _WorkerHandle(index)
            self._spawn(handle)
            self._handles.append(handle)
            self._inboxes.append(
                asyncio.Queue(maxsize=self.queue_depth)
            )
        self._tasks = [
            asyncio.ensure_future(self._dispatch_loop(i))
            for i in range(self.num_workers)
        ]

    async def stop(self) -> None:
        self._running = False
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        for inbox in self._inboxes:
            while not inbox.empty():
                pending = inbox.get_nowait()
                self._resolve_error(
                    pending,
                    WorkerError("shutting-down", 503,
                                "server is draining"),
                )
        for handle in self._handles:
            self._kill(handle, join_timeout=2.0)
        self._handles = []
        self._inboxes = []

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, self.allow_faults),
            daemon=True,
            name=f"repro-serve-worker-{handle.index}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.generation += 1

    def _respawn(self, handle: _WorkerHandle) -> None:
        self._kill(handle, join_timeout=2.0)
        self._spawn(handle)
        self.counters.inc("serve.worker_respawns")

    def _kill(self, handle: _WorkerHandle, join_timeout: float) -> None:
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
        if handle.process is not None:
            handle.process.join(timeout=join_timeout)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    def kill_worker(self, index: int) -> Optional[int]:
        """SIGKILL one worker (fault-injection hook); returns its pid.

        The dispatcher notices the death on its next interaction and
        respawns; in-flight requests on that worker get structured
        ``worker-crashed`` errors.
        """
        handle = self._handles[index]
        pid = handle.pid
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            # Wait for the kernel to reap it so the dispatcher's
            # pre-send liveness check deterministically sees the death.
            handle.process.join(timeout=5.0)
        return pid

    # -- submission -----------------------------------------------------

    def shard_of(self, key: str) -> int:
        return int(key[:8], 16) % self.num_workers

    async def submit(self, item: Dict, deadline: Deadline) -> Dict:
        """Queue one request; returns the worker's response document.

        Raises :class:`WorkerError` for backpressure, timeout, crash,
        or compile failure.
        """
        if not self._running:
            raise WorkerError("shutting-down", 503, "pool is stopped")
        shard = self.shard_of(item["key"])
        future: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )
        pending = _Pending(item, deadline, future)
        try:
            self._inboxes[shard].put_nowait(pending)
        except asyncio.QueueFull:
            self.counters.inc("serve.rejected")
            raise WorkerError(
                "overloaded", 429,
                f"worker {shard} queue is full "
                f"({self.queue_depth} deep); retry later",
            ) from None
        self.pending += 1
        try:
            result = await future
        finally:
            self.pending -= 1
        return result

    # -- dispatch -------------------------------------------------------

    async def _dispatch_loop(self, index: int) -> None:
        inbox = self._inboxes[index]
        handle = self._handles[index]
        while True:
            pending = await inbox.get()
            if pending.future.cancelled():
                continue
            if pending.deadline.expired():
                self._resolve_timeout([pending])
                continue
            batch = [pending]
            while len(batch) < self.max_batch:
                try:
                    extra = inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra.future.cancelled():
                    continue
                if extra.deadline.expired():
                    self._resolve_timeout([extra])
                    continue
                batch.append(extra)
            await self._dispatch_batch(handle, batch)

    async def _dispatch_batch(self, handle: _WorkerHandle,
                              batch: List[_Pending]) -> None:
        self.counters.inc("serve.batches")
        if len(batch) > 1:
            self.counters.inc("serve.batched_requests", len(batch))
        message = {
            "id": handle.generation,
            "kind": "batch",
            "items": [p.item for p in batch],
        }
        if not handle.alive:
            # Found dead between requests (external kill): respawn
            # first so the batch runs on a fresh worker.
            self.counters.inc("serve.worker_crashes")
            handle.crashes += 1
            self._respawn(handle)
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            self.counters.inc("serve.worker_crashes")
            handle.crashes += 1
            self._respawn(handle)
            try:
                handle.conn.send(message)
            except (BrokenPipeError, OSError):
                self._resolve_crash(batch, handle)
                return
        deadline = Deadline.earliest([p.deadline for p in batch])
        try:
            reply = await self._recv(handle, deadline)
        except _RecvTimeout:
            # The only way to cancel CPU-bound work in a worker is to
            # kill it; the slot is respawned immediately, so nothing
            # leaks — the affected requests all report timeout.
            self.counters.inc("serve.timeouts", len(batch))
            handle.crashes += 0  # timeout is not a crash
            self._respawn(handle)
            for pending in batch:
                self._resolve_error(
                    pending,
                    WorkerError(
                        "timeout", 504,
                        f"request exceeded its "
                        f"{pending.deadline.timeout_s}s deadline",
                    ),
                )
            return
        if reply.get("_eof"):
            self.counters.inc("serve.worker_crashes")
            handle.crashes += 1
            self._respawn(handle)
            self._resolve_crash(batch, handle)
            return
        results = reply.get("results", [])
        for pending, result in zip(batch, results):
            handle.requests += 1
            if isinstance(result, dict) and "_error" in result:
                self._resolve_error(
                    pending,
                    WorkerError(result["_error"], 500,
                                result.get("message", "compile failed")),
                )
            else:
                self.counters.inc("serve.compiles")
                if not pending.future.done():
                    pending.future.set_result(result)

    async def _recv(self, handle: _WorkerHandle,
                    deadline: Deadline) -> Dict:
        loop = asyncio.get_running_loop()
        conn = handle.conn
        fut = loop.run_in_executor(None, _recv_blocking, conn)
        while True:
            try:
                return await asyncio.wait_for(
                    asyncio.shield(fut), timeout=POLL_SLICE_S
                )
            except asyncio.TimeoutError:
                if deadline.expired():
                    raise _RecvTimeout()

    # -- resolution helpers ---------------------------------------------

    def _resolve_timeout(self, batch: List[_Pending]) -> None:
        self.counters.inc("serve.timeouts", len(batch))
        for pending in batch:
            self._resolve_error(
                pending,
                WorkerError(
                    "timeout", 504,
                    f"request exceeded its "
                    f"{pending.deadline.timeout_s}s deadline",
                ),
            )

    def _resolve_crash(self, batch: List[_Pending],
                       handle: _WorkerHandle) -> None:
        for pending in batch:
            self._resolve_error(
                pending,
                WorkerError(
                    "worker-crashed", 502,
                    f"worker {handle.index} died mid-request; "
                    f"a replacement was spawned",
                ),
            )

    @staticmethod
    def _resolve_error(pending: _Pending, error: WorkerError) -> None:
        if not pending.future.done():
            pending.future.set_exception(error)

    # -- introspection --------------------------------------------------

    def worker_stats(self) -> List[Dict]:
        return [
            {
                "index": handle.index,
                "pid": handle.pid,
                "alive": handle.alive,
                "generation": handle.generation,
                "requests": handle.requests,
                "crashes": handle.crashes,
            }
            for handle in self._handles
        ]


class _RecvTimeout(Exception):
    pass


def _recv_blocking(conn) -> Dict:
    """Executor-thread recv: every failure becomes an ``_eof`` marker
    (a worker death and a closed pipe look identical upstream)."""
    try:
        return conn.recv()
    except Exception:
        return {"_eof": True}


class InlinePool:
    """Degraded single-process pool: compiles on executor threads.

    Same ``submit`` interface as :class:`WorkerPool` with ``workers``
    acting as the thread count.  Used for tests, the CI smoke job, and
    `--workers 0` serving; crash/hang faults need real processes, so
    only the ``error`` fault applies here.  A timed-out compile cannot
    be killed (threads are uncancellable) — the response is an error
    but the thread runs to completion, which is why production serving
    uses processes.
    """

    def __init__(self, threads: int = 2, clock=None,
                 counters=NULL_COUNTERS, allow_faults: bool = False,
                 queue_depth: int = 64, max_batch: int = 1):
        from concurrent.futures import ThreadPoolExecutor

        self.num_workers = 0
        self.threads = max(1, threads)
        self.clock = clock if clock is not None else MonotonicClock()
        self.counters = counters
        self.allow_faults = allow_faults
        self.queue_depth = queue_depth
        self._executor = ThreadPoolExecutor(
            max_workers=self.threads,
            thread_name_prefix="repro-serve-inline",
        )
        self._sessions: Dict = {}
        self._running = False
        self.pending = 0

    async def start(self) -> None:
        self._running = True

    async def stop(self) -> None:
        self._running = False
        self._executor.shutdown(wait=False)

    def shard_of(self, key: str) -> int:
        return 0

    async def submit(self, item: Dict, deadline: Deadline) -> Dict:
        if not self._running:
            raise WorkerError("shutting-down", 503, "pool is stopped")
        if self.pending >= self.queue_depth:
            self.counters.inc("serve.rejected")
            raise WorkerError("overloaded", 429,
                              "inline queue is full; retry later")
        loop = asyncio.get_running_loop()
        self.pending += 1
        try:
            fut = loop.run_in_executor(
                self._executor, _compile_batch,
                self._sessions, [item], self.allow_faults,
            )
            while True:
                try:
                    results = await asyncio.wait_for(
                        asyncio.shield(fut), timeout=POLL_SLICE_S
                    )
                    break
                except asyncio.TimeoutError:
                    if deadline.expired():
                        self.counters.inc("serve.timeouts")
                        raise WorkerError(
                            "timeout", 504,
                            f"request exceeded its "
                            f"{deadline.timeout_s}s deadline",
                        ) from None
        finally:
            self.pending -= 1
        result = results[0]
        if isinstance(result, dict) and "_error" in result:
            raise WorkerError(result["_error"], 500,
                              result.get("message", "compile failed"))
        self.counters.inc("serve.compiles")
        self.counters.inc("serve.batches")
        return result

    def kill_worker(self, index: int) -> Optional[int]:
        raise WorkerError("bad-request", 400,
                          "inline pool has no processes to kill")

    def worker_stats(self) -> List[Dict]:
        return [{
            "index": 0,
            "pid": os.getpid(),
            "alive": True,
            "generation": 1,
            "requests": None,
            "crashes": 0,
            "inline_threads": self.threads,
        }]
