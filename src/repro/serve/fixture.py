"""First-class test harness for the compile server.

:class:`ServerFixture` spawns a real :class:`CompileServer` (real
sockets, real worker processes) on a background event-loop thread,
waits for readiness, and exposes synchronous helpers so plain pytest
tests can drive it.  The fault-injection surface lives here too:

* ``kill_worker(i)`` — SIGKILL a worker process (also mid-request, via
  the ``fault="crash"`` request field when ``allow_faults`` is on);
* ``corrupt_cache_entry(key)`` — flip bytes in a disk cache entry;
* ``poison_artifact_hash()`` — change the server's artifact hash, as a
  regenerated offline phase would, orphaning every existing cache key.

:class:`ServeClient` is the matching minimal asyncio HTTP/1.1 client
(keep-alive, Content-Length framing) shared with the load generator.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, List, Optional, Tuple

from repro.serve.server import CompileServer, ServeConfig


class ServeClient:
    """Minimal asyncio HTTP client speaking the server's HTTP subset."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, method: str, path: str,
                      payload: Optional[Dict] = None
                      ) -> Tuple[int, Dict[str, str], Dict]:
        """One request/response on the (kept-alive) connection."""
        if self._writer is None:
            await self.connect()
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> Tuple[int, Dict[str, str], Dict]:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        doc = json.loads(raw.decode("utf-8")) if raw else {}
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, doc

    async def compile(self, **payload
                      ) -> Tuple[int, Dict[str, str], Dict]:
        return await self.request("POST", "/compile", payload)

    async def metrics(self) -> Dict:
        _status, _headers, doc = await self.request("GET", "/metrics")
        return doc


class ServerFixture:
    """Spawn/await-ready/teardown wrapper around a real server.

    Usage::

        with ServerFixture(workers=2, allow_faults=True) as server:
            status, headers, doc = server.compile(source=..., lang="ir")
            server.kill_worker(0)
    """

    #: Seconds to wait for the server to come up / tear down.
    READY_TIMEOUT_S = 30.0

    def __init__(self, config: Optional[ServeConfig] = None,
                 clock=None, **config_kwargs):
        if config is None:
            config = ServeConfig(**config_kwargs)
        elif config_kwargs:
            raise ValueError("pass either config or kwargs, not both")
        self.config = config
        self.clock = clock
        self.server: Optional[CompileServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._clients: List[ServeClient] = []

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServerFixture":
        if self._thread is not None:
            raise RuntimeError("fixture already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-fixture",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(self.READY_TIMEOUT_S):
            raise TimeoutError("server did not become ready")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error!r}"
            )
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = CompileServer(self.config, clock=self.clock)
            loop.run_until_complete(server.start())
            self.server = server
        except BaseException as exc:  # surfaced to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        if self._loop is None:
            return
        for client in self._clients:
            try:
                self.run(client.close())
            except Exception:
                pass
        self._clients = []
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(self.READY_TIMEOUT_S)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerFixture":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- synchronous driving --------------------------------------------

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.config.host

    def run(self, coro, timeout: Optional[float] = None):
        """Run a coroutine on the server's loop from test code."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout or self.READY_TIMEOUT_S)

    def client(self) -> ServeClient:
        """A connected keep-alive client bound to the fixture's loop."""
        client = ServeClient(self.host, self.port)
        self.run(client.connect())
        self._clients.append(client)
        return client

    def compile(self, timeout: Optional[float] = None, **payload
                ) -> Tuple[int, Dict[str, str], Dict]:
        client = ServeClient(self.host, self.port)

        async def _one_shot():
            try:
                await client.connect()
                return await client.compile(**payload)
            finally:
                await client.close()

        return self.run(_one_shot(), timeout=timeout)

    def metrics(self) -> Dict:
        client = ServeClient(self.host, self.port)

        async def _one_shot():
            try:
                await client.connect()
                return await client.metrics()
            finally:
                await client.close()

        return self.run(_one_shot())

    # -- fault injection ------------------------------------------------

    def kill_worker(self, index: int) -> Optional[int]:
        """SIGKILL worker ``index``; returns the killed pid."""
        return self.server.pool.kill_worker(index)

    def worker_pids(self) -> List[Optional[int]]:
        return [stats["pid"] for stats in self.server.pool.worker_stats()]

    def corrupt_cache_entry(self, key: str) -> str:
        """Flip bytes in ``key``'s on-disk entry; returns the path."""
        path = self.server.cache.entry_path(key)
        if path is None:
            raise RuntimeError("server has no disk cache tier")
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        # Corrupt well inside the stored body text so the JSON still
        # parses but the body hash no longer matches.
        mid = len(data) // 2
        data[mid] = (data[mid] + 1) % 128 or 97
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        return path

    def poison_artifact_hash(self,
                             value: str = "poisoned-artifact-hash") -> str:
        """Swap the server's artifact hash (simulates a regenerated
        offline phase); every existing cache key becomes unreachable."""
        old = self.server.artifact_hash
        self.server.artifact_hash = value
        return old
