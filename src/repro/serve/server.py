"""The asyncio JSON-over-HTTP compile server (``repro serve``).

Architecture (the Figure-3 split, long-lived):

* the *offline* phase is loaded once — the serialized
  ``vegen_targets.json`` artifact's content hash is part of every cache
  key, so a regenerated artifact can never serve stale results;
* the *online* phase runs in a hash-sharded
  :class:`~repro.serve.workers.WorkerPool` of processes, each holding
  warm :class:`~repro.session.VectorizationSession` objects;
* in front of both sits a two-tier content-addressed
  :class:`~repro.serve.cache.ResultCache`, so repeated requests are an
  O(1) lookup instead of a pack-selection search.

Routes::

    POST /compile   {"source": ..., "lang": "c"|"ir", "target": ...}
    GET  /metrics   counters, cache + worker stats, effective config
    GET  /healthz   liveness

The HTTP layer is a deliberately small HTTP/1.1 subset over
``asyncio.start_server`` (request line + headers + Content-Length
bodies, keep-alive) — stdlib only, enough for the load generator and
``curl``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.counters import Counters
from repro.serve.cache import ResultCache, cache_key, current_artifact_hash
from repro.serve.clock import Deadline, MonotonicClock
from repro.serve.protocol import (
    RequestError,
    STATUS_REASONS,
    encode_body,
    error_body,
    parse_compile_request,
)
from repro.serve.workers import InlinePool, WorkerError, WorkerPool
from repro.vectorizer.context import VectorizerConfig

#: Largest accepted request body (a mini-C kernel is a few KB).
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass
class ServeConfig:
    """Everything tunable about one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0: pick a free port
    workers: int = 2                  # 0: inline (thread) execution
    inline_threads: int = 2           # thread count when workers == 0
    queue_depth: int = 64             # per-worker inbox bound
    max_pending: int = 256            # global in-flight bound (429 above)
    max_batch: int = 8                # requests per worker IPC round-trip
    default_timeout_s: Optional[float] = 30.0
    max_timeout_s: Optional[float] = 120.0
    cache_dir: Optional[str] = None   # None: memory-only cache
    cache_memory_entries: int = 1024
    cache_disk_limit_bytes: Optional[int] = None  # None: use the
                                      # REPRO_SERVE_CACHE_LIMIT env knob
    allow_faults: bool = False        # enable the fault-injection layer
    default_config: VectorizerConfig = field(
        default_factory=lambda: VectorizerConfig(beam_width=8)
    )


class CompileServer:
    """One long-lived compile service bound to a host/port."""

    def __init__(self, config: Optional[ServeConfig] = None, clock=None):
        self.config = config or ServeConfig()
        self.clock = clock if clock is not None else MonotonicClock()
        self.counters = Counters()
        self.cache = ResultCache(
            disk_dir=self.config.cache_dir,
            memory_entries=self.config.cache_memory_entries,
            disk_limit_bytes=self.config.cache_disk_limit_bytes,
        )
        if self.config.workers >= 1:
            self.pool = WorkerPool(
                self.config.workers,
                clock=self.clock,
                counters=self.counters,
                allow_faults=self.config.allow_faults,
                queue_depth=self.config.queue_depth,
                max_batch=self.config.max_batch,
            )
        else:
            self.pool = InlinePool(
                threads=self.config.inline_threads,
                clock=self.clock,
                counters=self.counters,
                allow_faults=self.config.allow_faults,
                queue_depth=self.config.queue_depth,
            )
        #: Part of every cache key; the fault harness can poison it.
        self.artifact_hash = current_artifact_hash()
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at: Optional[float] = None
        self._draining = False
        self._connections: set = set()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.time()

    async def stop(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._connections.clear()
        await self.pool.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, doc_bytes, headers = await self._route(
                    method, path, body
                )
                keep_alive = not self._draining
                await self._write_response(
                    writer, status, doc_bytes, headers, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server draining: finish quietly, not as an error
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = (
                request_line.decode("latin-1").split(None, 2)
            )
        except ValueError:
            return None
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY_BYTES:
            return method, path, b"\x00oversized"
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, path, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, body: bytes,
                              headers: Dict[str, str],
                              keep_alive: bool) -> None:
        reason = STATUS_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing --------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, bytes, Dict[str, str]]:
        path = path.split("?", 1)[0]
        if path == "/compile":
            if method != "POST":
                return self._error(405, "bad-request",
                                   "POST /compile")
            if body.startswith(b"\x00oversized"):
                return self._error(413, "bad-request",
                                   "request body too large")
            return await self._handle_compile(body)
        if path == "/metrics":
            if method != "GET":
                return self._error(405, "bad-request", "GET /metrics")
            return 200, encode_body(self.metrics()), {}
        if path == "/healthz":
            return 200, encode_body({"status": "ok"}), {}
        return self._error(404, "not-found", f"no route {path!r}")

    def _error(self, status: int, code: str, message: str
               ) -> Tuple[int, bytes, Dict[str, str]]:
        if status >= 400:
            self.counters.inc("serve.errors")
        return status, encode_body(error_body(code, message)), {}

    # -- the compile path -----------------------------------------------

    async def _handle_compile(self, body: bytes
                              ) -> Tuple[int, bytes, Dict[str, str]]:
        if self._draining:
            return self._error(503, "shutting-down",
                               "server is draining")
        self.counters.inc("serve.requests")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return self._error(400, "bad-request",
                               f"body is not valid JSON: {exc}")
        try:
            request = parse_compile_request(
                payload,
                default_timeout_s=self.config.default_timeout_s,
                max_timeout_s=self.config.max_timeout_s,
                allow_faults=self.config.allow_faults,
                default_config=self.config.default_config,
            )
        except RequestError as exc:
            return self._error(exc.status, "bad-request", str(exc))

        key = cache_key(request.canonical_ir, request.target,
                        request.config, self.artifact_hash)
        cached = self.cache.get(key, counters=self.counters)
        if cached is not None:
            return 200, cached, {"X-Repro-Cache": "hit",
                                 "X-Repro-Key": key}

        if self.pool.pending >= self.config.max_pending:
            self.counters.inc("serve.rejected")
            return self._error(
                429, "overloaded",
                f"{self.pool.pending} requests already in flight "
                f"(max_pending={self.config.max_pending}); retry later",
            )

        item = {
            "key": key,
            "ir": request.canonical_ir,
            "target": request.target,
            "config": request.config.canonical_dict(),
            "fault": request.fault,
        }
        deadline = Deadline(self.clock, request.timeout_s)
        try:
            result = await self.pool.submit(item, deadline)
        except WorkerError as exc:
            return self._error(exc.status, exc.code, exc.message)
        response = encode_body(result)
        # Fault-injected compiles are kept out of the cache: the harness
        # uses them to probe the pool, not to poison later hits.
        if request.fault is None:
            self.cache.put(key, response, counters=self.counters)
        return 200, response, {"X-Repro-Cache": "miss",
                               "X-Repro-Key": key}

    # -- metrics --------------------------------------------------------

    def metrics(self) -> Dict:
        uptime = (time.time() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "schema": "repro-serve-metrics/v1",
            "uptime_s": round(uptime, 3),
            "counters": {
                name: value
                for name, value in self.counters.as_dict().items()
            },
            "artifact_hash": self.artifact_hash,
            "cache": {
                "memory_entries": len(self.cache),
                "memory_capacity": self.cache.memory_entries,
                "disk_entries": self.cache.disk_entries(),
                "disk_dir": self.cache.disk_dir,
            },
            "workers": self.pool.worker_stats(),
            "pending": self.pool.pending,
            "config": {
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "max_pending": self.config.max_pending,
                "max_batch": self.config.max_batch,
                "default_timeout_s": self.config.default_timeout_s,
                "max_timeout_s": self.config.max_timeout_s,
                "allow_faults": self.config.allow_faults,
                "vectorizer": self.config.default_config.canonical_dict(),
            },
        }


async def run_server(config: Optional[ServeConfig] = None) -> None:
    """Start a server and block until cancelled (the CLI entry point)."""
    server = CompileServer(config)
    await server.start()
    host = server.config.host
    print(f"repro serve: listening on http://{host}:{server.port} "
          f"({server.config.workers or 'inline'} workers, cache "
          f"{'at ' + server.config.cache_dir if server.config.cache_dir else 'in memory'})",
          flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.stop()
