"""Injectable clocks and request deadlines for the compile server.

Every timeout decision in :mod:`repro.serve` flows through a
:class:`Deadline` built from an injectable clock, so the fault-injection
test harness can drive expiry deterministically with a
:class:`FakeClock` (``advance()`` is the only way fake time moves)
instead of sleeping real wall time.
"""

from __future__ import annotations

import time
from typing import Optional


class MonotonicClock:
    """The production clock: ``time.monotonic``."""

    def now(self) -> float:
        return time.monotonic()


class FakeClock:
    """A manually-advanced clock for deterministic timeout tests."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("FakeClock cannot move backwards")
        self._now += seconds


class Deadline:
    """One request's time budget against an injectable clock.

    ``timeout_s=None`` means no deadline: ``expired()`` is always False
    and ``remaining()`` is None.
    """

    __slots__ = ("_clock", "timeout_s", "_expires_at")

    def __init__(self, clock, timeout_s: Optional[float]):
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        self._clock = clock
        self.timeout_s = timeout_s
        self._expires_at = (
            None if timeout_s is None else clock.now() + timeout_s
        )

    def remaining(self) -> Optional[float]:
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock.now()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    @staticmethod
    def earliest(deadlines) -> "Deadline":
        """The tightest deadline of a batch (a batch waits as one)."""
        best = None
        for deadline in deadlines:
            if deadline._expires_at is None:
                continue
            if best is None or deadline._expires_at < best._expires_at:
                best = deadline
        if best is not None:
            return best
        for deadline in deadlines:
            return deadline  # all unbounded: any of them will do
        raise ValueError("earliest() of an empty batch")

    def __repr__(self) -> str:
        return f"<Deadline timeout={self.timeout_s} " \
               f"remaining={self.remaining()}>"
