"""Load generator for the compile server (``repro bench --serve``).

Spins up an in-process :class:`~repro.serve.fixture.ServerFixture`,
drives it with many concurrent keep-alive clients, and writes a
``BENCH_serve.json`` trajectory:

* a **cold** phase compiles each unique (kernel, target) request once —
  these latencies include the real pack-selection search;
* a **hot** phase replays the same requests round-robin from
  ``concurrency`` concurrent clients — after the cold phase every one
  must be a cache hit; its latencies measure the server *under load*
  (queueing included) and its wall clock gives throughput;
* a **hit** phase replays the cached requests from a single unloaded
  client — its latencies measure the cache-hit service path itself,
  which is what ``cache_speedup_p50`` compares against a cold compile.

Reported: p50/p99/mean latency for all three phases, hot-phase
throughput, the cold/hit speedup, and the server's ``serve.*``
counters.  The document fails validation if any request was non-2xx or
the hot phase can't prove its cache hits against ``/metrics``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence

#: Schema identifier; bump on any breaking change.
SERVE_BENCH_SCHEMA = "repro-serve-bench/v1"

#: Default output file name.
DEFAULT_SERVE_BENCH_PATH = "BENCH_serve.json"

#: Small kernels that cover distinct pipeline shapes without making the
#: cold phase dominate the run.
DEFAULT_KERNELS = (
    "complex_mul",
    "isel_dot4_i16",
    "isel_hadd4_i32",
    "isel_mul_sub4_i32",
    "dsp_fft4",
    "dsp_lms16",
)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def _latency_stats(samples_s: List[float]) -> Dict:
    ordered = sorted(samples_s)
    count = len(ordered)
    return {
        "count": count,
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p90_ms": round(_percentile(ordered, 0.90) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1e3, 3),
        "mean_ms": round(
            (sum(ordered) / count if count else 0.0) * 1e3, 3
        ),
    }


def run_serve_bench(kernel_names: Optional[Sequence[str]] = None,
                    targets: Sequence[str] = ("avx2",),
                    concurrency: int = 128,
                    hot_requests: int = 1000,
                    workers: int = 2,
                    beam_width: int = 8,
                    cache_dir: Optional[str] = None,
                    progress=None) -> Dict:
    """Run the cold+hot load profile; returns the bench document."""
    import asyncio

    from repro import __version__
    from repro.ir.printer import print_function
    from repro.kernels import all_kernels
    from repro.serve.fixture import ServeClient, ServerFixture
    from repro.vectorizer.context import VectorizerConfig

    kernels = all_kernels()
    if kernel_names is None:
        kernel_names = [k for k in DEFAULT_KERNELS if k in kernels]
    unknown = [k for k in kernel_names if k not in kernels]
    if unknown:
        raise KeyError(f"unknown kernels: {', '.join(sorted(unknown))}")

    payloads = [
        {
            "source": print_function(kernels[name]),
            "lang": "ir",
            "target": target,
            "config": {"beam_width": beam_width},
        }
        for target in targets
        for name in kernel_names
    ]

    fixture = ServerFixture(
        workers=workers,
        cache_dir=cache_dir,
        max_pending=max(4 * concurrency, 512),
        queue_depth=max(2 * concurrency, 128),
        default_config=VectorizerConfig(beam_width=beam_width),
    )
    fixture.start()
    statuses: List[int] = []
    try:
        async def _drive(requests: List[Dict], n_clients: int,
                         samples: List[float]) -> None:
            queue: "asyncio.Queue" = asyncio.Queue()
            for payload in requests:
                queue.put_nowait(payload)

            async def _client_loop() -> None:
                client = ServeClient(fixture.host, fixture.port)
                await client.connect()
                try:
                    while True:
                        try:
                            payload = queue.get_nowait()
                        except asyncio.QueueEmpty:
                            return
                        start = time.perf_counter()
                        status, _headers, _doc = await client.compile(
                            **payload
                        )
                        samples.append(time.perf_counter() - start)
                        statuses.append(status)
                finally:
                    await client.close()

            await asyncio.gather(
                *(_client_loop() for _ in range(n_clients))
            )

        if progress is not None:
            progress(f"serve bench: cold phase, {len(payloads)} unique "
                     f"requests over {workers or 'inline'} workers")
        cold_samples: List[float] = []
        cold_start = time.perf_counter()
        # Cold phase runs with modest client concurrency: every request
        # is a real compile and the point is per-request latency.
        fixture.run(
            _drive(payloads, min(8, len(payloads)), cold_samples),
            timeout=600.0,
        )
        cold_wall = time.perf_counter() - cold_start

        hot_payloads = [payloads[i % len(payloads)]
                        for i in range(hot_requests)]
        if progress is not None:
            progress(f"serve bench: hot phase, {hot_requests} requests "
                     f"from {concurrency} concurrent clients")
        hot_samples: List[float] = []
        hot_start = time.perf_counter()
        fixture.run(
            _drive(hot_payloads, concurrency, hot_samples),
            timeout=600.0,
        )
        hot_wall = time.perf_counter() - hot_start

        # Unloaded hit phase: one client, so each sample is the cache
        # lookup + byte replay itself, with no queueing behind the
        # other `concurrency - 1` clients sharing the event loop.
        hit_count = max(len(payloads), 50)
        hit_payloads = [payloads[i % len(payloads)]
                        for i in range(hit_count)]
        if progress is not None:
            progress(f"serve bench: hit phase, {hit_count} requests "
                     f"from 1 unloaded client")
        hit_samples: List[float] = []
        hit_start = time.perf_counter()
        fixture.run(
            _drive(hit_payloads, 1, hit_samples),
            timeout=600.0,
        )
        hit_wall = time.perf_counter() - hit_start
        metrics = fixture.metrics()
    finally:
        fixture.stop()

    non_2xx = sum(1 for status in statuses if not 200 <= status < 300)
    cold = _latency_stats(cold_samples)
    hot = _latency_stats(hot_samples)
    hit = _latency_stats(hit_samples)
    speedup = (cold["p50_ms"] / hit["p50_ms"]
               if hit["p50_ms"] > 0 else 0.0)
    counters = metrics.get("counters", {})
    return {
        "schema": SERVE_BENCH_SCHEMA,
        "version": __version__,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "workers": workers,
        "concurrency": concurrency,
        "beam_width": beam_width,
        "targets": list(targets),
        "kernels": list(kernel_names),
        "unique_requests": len(payloads),
        "hot_requests": hot_requests,
        "non_2xx": non_2xx,
        "cold": dict(cold, wall_s=round(cold_wall, 3)),
        "hot": dict(
            hot,
            wall_s=round(hot_wall, 3),
            throughput_rps=round(
                len(hot_samples) / hot_wall if hot_wall > 0 else 0.0, 1
            ),
        ),
        "hit": dict(hit, wall_s=round(hit_wall, 3)),
        "cache_speedup_p50": round(speedup, 1),
        "counters": {name: value for name, value in counters.items()
                     if name.startswith("serve.")},
    }


def validate_serve_bench(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid, *healthy* serve
    bench: well-formed, all responses 2xx, and hot-phase cache hits
    proved by the server's own counters."""
    if not isinstance(doc, dict):
        raise ValueError("serve bench document must be a JSON object")
    if doc.get("schema") != SERVE_BENCH_SCHEMA:
        raise ValueError(
            f"unknown serve bench schema {doc.get('schema')!r}; "
            f"expected {SERVE_BENCH_SCHEMA!r}"
        )
    for field in ("version", "workers", "concurrency", "targets",
                  "kernels", "unique_requests", "hot_requests",
                  "non_2xx", "cold", "hot", "hit", "cache_speedup_p50",
                  "counters"):
        if field not in doc:
            raise ValueError(f"serve bench missing field {field!r}")
    for phase in ("cold", "hot", "hit"):
        for stat in ("count", "p50_ms", "p99_ms", "mean_ms", "wall_s"):
            if not isinstance(doc[phase].get(stat), (int, float)):
                raise ValueError(f"serve bench {phase}.{stat} malformed")
    if doc["non_2xx"]:
        raise ValueError(
            f"serve bench recorded {doc['non_2xx']} non-2xx responses"
        )
    hits = doc["counters"].get("serve.cache_hits", 0)
    if hits < doc["hot_requests"]:
        raise ValueError(
            f"unproven cache hits: serve.cache_hits={hits} but the hot "
            f"phase sent {doc['hot_requests']} repeat requests"
        )


def write_serve_bench(doc: Dict,
                      path: str = DEFAULT_SERVE_BENCH_PATH) -> None:
    validate_serve_bench(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_serve_summary(doc: Dict, stream=None) -> None:
    import sys

    out = stream or sys.stdout
    hot = doc["hot"]
    cold = doc["cold"]
    print(
        f"repro bench --serve: {doc['unique_requests']} unique / "
        f"{doc['hot_requests']} hot requests, "
        f"{doc['concurrency']} concurrent clients, "
        f"{doc['workers'] or 'inline'} workers",
        file=out,
    )
    print(
        f"  cold: p50 {cold['p50_ms']:.1f}ms  p99 {cold['p99_ms']:.1f}ms"
        f"  (n={cold['count']})",
        file=out,
    )
    print(
        f"  hot : p50 {hot['p50_ms']:.2f}ms  p99 {hot['p99_ms']:.2f}ms"
        f"  {hot['throughput_rps']:.0f} req/s  (n={hot['count']})",
        file=out,
    )
    hit = doc["hit"]
    print(
        f"  hit : p50 {hit['p50_ms']:.2f}ms  p99 {hit['p99_ms']:.2f}ms"
        f"  (n={hit['count']}, 1 unloaded client)",
        file=out,
    )
    print(
        f"  cache speedup (cold p50 / unloaded hit p50): "
        f"{doc['cache_speedup_p50']:.0f}x; "
        f"hits {doc['counters'].get('serve.cache_hits', 0)}, "
        f"misses {doc['counters'].get('serve.cache_misses', 0)}",
        file=out,
    )
