"""Content-addressed compile-result cache: memory LRU over a disk store.

The key is a SHA-256 over the four inputs that fully determine a
compile's output: the canonical IR text, the target name, the canonical
:class:`~repro.vectorizer.context.VectorizerConfig` serialization, and
the offline artifact's content hash (a regenerated artifact must never
serve results computed from the old one).  Values are the serialized
response-body bytes, so a hit replays the exact bytes a cold compile
produced.

Two tiers:

* an in-memory LRU (``OrderedDict``, bounded entry count) for the hot
  set — O(1) and shared by every request on the server's event loop;
* an on-disk store (one file per key, written atomically via rename)
  that survives restarts.  Every disk entry embeds a SHA-256 of its own
  body; a read that fails the hash (bit rot, torn write, deliberate
  fault injection) deletes the entry and reports a miss, so corruption
  degrades to a recompile instead of serving garbage.

The disk tier is size-capped via :mod:`repro.disklru`: set
``REPRO_SERVE_CACHE_LIMIT`` (bytes, optional K/M/G suffix) or pass
``disk_limit_bytes`` and every write evicts least-recently-used entries
(disk hits refresh recency) until the tier fits.  Unset means unbounded,
the historical behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Optional

from repro.disklru import enforce_disk_limit, limit_from_env, mark_used
from repro.obs.counters import NULL_COUNTERS
from repro.vectorizer.context import VectorizerConfig

#: Disk entry schema; bump on any breaking change.
CACHE_ENTRY_SCHEMA = "repro-serve-cache/v1"

#: Key-derivation version: bump to invalidate every existing key.
KEY_SCHEMA = "repro-serve-key/v1"

#: Environment variable capping the disk tier's total size in bytes
#: (optional K/M/G suffix); unset or empty means unbounded.
CACHE_LIMIT_ENV = "REPRO_SERVE_CACHE_LIMIT"


def cache_key(canonical_ir: str, target: str, config: VectorizerConfig,
              artifact_hash: str) -> str:
    """SHA-256 hex digest addressing one compile's result."""
    digest = hashlib.sha256()
    for part in (KEY_SCHEMA, canonical_ir, target,
                 config.canonical_json(), artifact_hash):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def current_artifact_hash() -> str:
    """The content hash of the offline phase feeding this process.

    When a fresh serialized artifact is loaded, this is its recorded
    ``spec_hash``; otherwise it is the hash of the live spec inventory —
    either way, regenerating the offline phase changes the value and
    therefore every cache key.
    """
    from repro.target.artifact import spec_content_hash

    return spec_content_hash()


class ResultCache:
    """Two-tier (memory LRU + disk) content-addressed byte cache."""

    def __init__(self, disk_dir: Optional[str] = None,
                 memory_entries: int = 1024,
                 disk_limit_bytes: Optional[int] = None):
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.disk_dir = disk_dir
        self.memory_entries = memory_entries
        # Explicit cap wins; otherwise the environment knob applies.
        self.disk_limit_bytes = (disk_limit_bytes
                                 if disk_limit_bytes is not None
                                 else limit_from_env(CACHE_LIMIT_ENV))
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    # -- paths ----------------------------------------------------------

    def entry_path(self, key: str) -> Optional[str]:
        """Where ``key``'s disk entry lives (None without a disk tier).

        Public so the fault-injection harness can corrupt entries."""
        if self.disk_dir is None:
            return None
        return os.path.join(self.disk_dir, f"{key}.json")

    # -- core API ---------------------------------------------------------

    def get(self, key: str, counters=NULL_COUNTERS) -> Optional[bytes]:
        body = self._memory.get(key)
        if body is not None:
            self._memory.move_to_end(key)
            counters.inc("serve.cache_hits")
            counters.inc("serve.cache_memory_hits")
            return body
        body = self._disk_get(key, counters)
        if body is not None:
            self._memory_put(key, body, counters)
            counters.inc("serve.cache_hits")
            counters.inc("serve.cache_disk_hits")
            return body
        counters.inc("serve.cache_misses")
        return None

    def put(self, key: str, body: bytes,
            counters=NULL_COUNTERS) -> None:
        self._memory_put(key, body, counters)
        self._disk_put(key, body, counters)

    def __contains__(self, key: str) -> bool:
        path = self.entry_path(key)
        return key in self._memory or (
            path is not None and os.path.exists(path)
        )

    def __len__(self) -> int:
        return len(self._memory)

    def disk_entries(self) -> int:
        if self.disk_dir is None:
            return 0
        return sum(1 for name in os.listdir(self.disk_dir)
                   if name.endswith(".json"))

    def disk_size_bytes(self) -> int:
        """Total bytes held by the disk tier (0 without one)."""
        from repro.disklru import disk_tier_size

        return disk_tier_size(self.disk_dir)

    def clear_memory(self) -> None:
        """Drop the LRU tier (disk entries survive) — restart simulation."""
        self._memory.clear()

    # -- memory tier ------------------------------------------------------

    def _memory_put(self, key: str, body: bytes, counters) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = body
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            counters.inc("serve.cache_evictions")

    # -- disk tier --------------------------------------------------------

    def _disk_get(self, key: str, counters) -> Optional[bytes]:
        path = self.entry_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                entry = json.loads(handle.read().decode("utf-8"))
            if entry.get("schema") != CACHE_ENTRY_SCHEMA:
                raise ValueError("bad schema")
            if entry.get("key") != key:
                raise ValueError("key mismatch")
            body = entry["body"].encode("utf-8")
            digest = hashlib.sha256(body).hexdigest()
            if digest != entry.get("body_sha256"):
                raise ValueError("body hash mismatch")
            # A hit is a use: refresh mtime so size-capped eviction
            # drops this entry last (the disk tier's move_to_end).
            mark_used(path)
            return body
        except (OSError, ValueError, KeyError, UnicodeDecodeError,
                AttributeError):
            # Corrupt, truncated, or foreign file under our key: evict
            # it so the next compile rewrites a good entry.
            counters.inc("serve.cache_corrupt_evictions")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, body: bytes,
                  counters=NULL_COUNTERS) -> None:
        path = self.entry_path(key)
        if path is None:
            return
        entry = {
            "schema": CACHE_ENTRY_SCHEMA,
            "key": key,
            "body_sha256": hashlib.sha256(body).hexdigest(),
            "body": body.decode("utf-8"),
        }
        data = json.dumps(entry, sort_keys=True).encode("utf-8")
        # Atomic publish: a reader never observes a half-written entry,
        # and a crash mid-write leaves only a stray .tmp file.
        fd, tmp = tempfile.mkstemp(dir=self.disk_dir,
                                   prefix=f".{key[:16]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        evicted = enforce_disk_limit(self.disk_dir,
                                     self.disk_limit_bytes)
        if evicted:
            counters.inc("serve.cache_disk_evictions", evicted)
