"""Bitvector expression nodes — the z3 substitute.

The paper's offline phase (§6.1) symbolically evaluates Intel's pseudocode
into SMT bitvector formulas and uses z3's *simplifier* (never its solver) to
reduce them before lifting to VIDL.  This module provides the expression
representation; :mod:`repro.bitvector.simplify` provides the simplifier and
:mod:`repro.bitvector.eval` the concrete evaluator used for validating
translated semantics by random testing.

Conventions:

* Every expression is a bitvector of a fixed ``width``.
* Integer operations use the same opcode names as the scalar IR
  (``add``, ``ashr``, ...) so lifting to VIDL is a rename-free walk.
* Floating point lanes are bitvectors too; ``fadd``/``fmul``/... interpret
  their operands as IEEE floats of the operand width (like z3's
  float-via-bitvector reinterpretation).
* Comparisons produce width-1 bitvectors.
* Expressions are immutable and structurally hashable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.utils.intmath import mask


class BVOps:
    """Opcode name constants for bitvector expressions."""

    INT_BINARY = frozenset(
        {
            "add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
            "and", "or", "xor", "shl", "lshr", "ashr",
        }
    )
    FLOAT_BINARY = frozenset({"fadd", "fsub", "fmul", "fdiv"})
    ICMP = frozenset(
        {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
    )
    FCMP = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge"})
    UNARY = frozenset({"not", "neg", "fneg"})
    CAST = frozenset({"sext", "zext", "fpext", "fptrunc", "sitofp", "fptosi"})

    COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


class BVExpr:
    """Base class: immutable bitvector expression of fixed width."""

    __slots__ = ("width", "_hash")

    def __init__(self, width: int):
        if width < 1:
            raise ValueError(f"bad bitvector width {width}")
        self.width = width
        self._hash = None

    def _key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((type(self).__name__,) + self._key())
        return self._hash

    def children(self) -> Tuple["BVExpr", ...]:
        return ()

    def __repr__(self) -> str:
        from repro.bitvector.printer import format_expr

        return format_expr(self)


class BVVar(BVExpr):
    """A free variable (an instruction input register)."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int):
        super().__init__(width)
        self.name = name

    def _key(self):
        return (self.name, self.width)


class BVConst(BVExpr):
    """A constant, stored unsigned."""

    __slots__ = ("value",)

    def __init__(self, value: int, width: int):
        super().__init__(width)
        self.value = mask(int(value), width)

    def _key(self):
        return (self.value, self.width)


class BVExtract(BVExpr):
    """``expr[hi:lo]`` — inclusive bit range, like SMT-LIB extract."""

    __slots__ = ("hi", "lo", "operand")

    def __init__(self, hi: int, lo: int, operand: BVExpr):
        if not (0 <= lo <= hi < operand.width):
            raise ValueError(
                f"bad extract [{hi}:{lo}] of width-{operand.width} expr"
            )
        super().__init__(hi - lo + 1)
        self.hi = hi
        self.lo = lo
        self.operand = operand

    def _key(self):
        return (self.hi, self.lo, self.operand)

    def children(self):
        return (self.operand,)


class BVConcat(BVExpr):
    """Concatenation; ``parts[0]`` is the most significant part."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[BVExpr]):
        parts = tuple(parts)
        if not parts:
            raise ValueError("empty concat")
        super().__init__(sum(p.width for p in parts))
        self.parts = parts

    def _key(self):
        return self.parts

    def children(self):
        return self.parts


class BVBinary(BVExpr):
    """A binary operation: integer/float arithmetic or comparison."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: BVExpr, rhs: BVExpr):
        if lhs.width != rhs.width:
            raise ValueError(
                f"{op}: width mismatch {lhs.width} vs {rhs.width}"
            )
        if op in BVOps.ICMP or op in BVOps.FCMP:
            width = 1
        elif op in BVOps.INT_BINARY or op in BVOps.FLOAT_BINARY:
            width = lhs.width
        else:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(width)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def _key(self):
        return (self.op, self.lhs, self.rhs)

    def children(self):
        return (self.lhs, self.rhs)


class BVUnary(BVExpr):
    """``not``, ``neg`` (two's complement), or ``fneg``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: BVExpr):
        if op not in BVOps.UNARY:
            raise ValueError(f"unknown unary op {op!r}")
        super().__init__(operand.width)
        self.op = op
        self.operand = operand

    def _key(self):
        return (self.op, self.operand)

    def children(self):
        return (self.operand,)


class BVCast(BVExpr):
    """Width/representation conversion to ``width`` bits."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: BVExpr, width: int):
        if op not in BVOps.CAST:
            raise ValueError(f"unknown cast op {op!r}")
        if op in ("sext", "zext") and width < operand.width:
            raise ValueError(f"{op} must widen ({operand.width} -> {width})")
        if op == "fpext" and not (operand.width == 32 and width == 64):
            raise ValueError("fpext is only f32 -> f64")
        if op == "fptrunc" and not (operand.width == 64 and width == 32):
            raise ValueError("fptrunc is only f64 -> f32")
        super().__init__(width)
        self.op = op
        self.operand = operand

    def _key(self):
        return (self.op, self.operand, self.width)

    def children(self):
        return (self.operand,)


class BVIte(BVExpr):
    """If-then-else on a width-1 condition."""

    __slots__ = ("cond", "on_true", "on_false")

    def __init__(self, cond: BVExpr, on_true: BVExpr, on_false: BVExpr):
        if cond.width != 1:
            raise ValueError("ite condition must have width 1")
        if on_true.width != on_false.width:
            raise ValueError(
                f"ite arms differ: {on_true.width} vs {on_false.width}"
            )
        super().__init__(on_true.width)
        self.cond = cond
        self.on_true = on_true
        self.on_false = on_false

    def _key(self):
        return (self.cond, self.on_true, self.on_false)

    def children(self):
        return (self.cond, self.on_true, self.on_false)


# -- convenience constructors -------------------------------------------------


def bv_var(name: str, width: int) -> BVVar:
    return BVVar(name, width)


def bv_const(value: int, width: int) -> BVConst:
    return BVConst(value, width)


def bv_extract(hi: int, lo: int, operand: BVExpr) -> BVExpr:
    if lo == 0 and hi == operand.width - 1:
        return operand
    return BVExtract(hi, lo, operand)


def bv_concat(parts: Iterable[BVExpr]) -> BVExpr:
    parts = list(parts)
    if len(parts) == 1:
        return parts[0]
    return BVConcat(parts)


def bv_binary(op: str, lhs: BVExpr, rhs: BVExpr) -> BVExpr:
    return BVBinary(op, lhs, rhs)


def bv_ite(cond: BVExpr, on_true: BVExpr, on_false: BVExpr) -> BVExpr:
    return BVIte(cond, on_true, on_false)


def bv_sext(operand: BVExpr, width: int) -> BVExpr:
    if width == operand.width:
        return operand
    return BVCast("sext", operand, width)


def bv_zext(operand: BVExpr, width: int) -> BVExpr:
    if width == operand.width:
        return operand
    return BVCast("zext", operand, width)


def bv_trunc(operand: BVExpr, width: int) -> BVExpr:
    if width == operand.width:
        return operand
    return bv_extract(width - 1, 0, operand)


def expr_size(expr: BVExpr) -> int:
    """Number of nodes in the expression DAG (counted as a tree)."""
    return 1 + sum(expr_size(c) for c in expr.children())


def free_variables(expr: BVExpr) -> List[BVVar]:
    """All distinct variables in ``expr``, in first-appearance order."""
    seen = {}
    stack = [expr]
    order: List[BVVar] = []

    def visit(node: BVExpr) -> None:
        if isinstance(node, BVVar):
            if node._key() not in seen:
                seen[node._key()] = node
                order.append(node)
            return
        for child in node.children():
            visit(child)

    visit(expr)
    return order
