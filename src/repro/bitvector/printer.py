"""Human-readable rendering of bitvector expressions (for debugging and
error messages; no parser — formulas are produced programmatically)."""

from __future__ import annotations

from repro.bitvector import expr as E


def format_expr(node: "E.BVExpr") -> str:
    if isinstance(node, E.BVVar):
        return f"{node.name}:{node.width}"
    if isinstance(node, E.BVConst):
        return f"{node.value}#{node.width}"
    if isinstance(node, E.BVExtract):
        return f"{format_expr(node.operand)}[{node.hi}:{node.lo}]"
    if isinstance(node, E.BVConcat):
        return "(concat " + " ".join(format_expr(p) for p in node.parts) + ")"
    if isinstance(node, E.BVBinary):
        return (
            f"({node.op} {format_expr(node.lhs)} {format_expr(node.rhs)})"
        )
    if isinstance(node, E.BVUnary):
        return f"({node.op} {format_expr(node.operand)})"
    if isinstance(node, E.BVCast):
        return f"({node.op}{node.width} {format_expr(node.operand)})"
    if isinstance(node, E.BVIte):
        return (
            f"(ite {format_expr(node.cond)} {format_expr(node.on_true)} "
            f"{format_expr(node.on_false)})"
        )
    return f"<{type(node).__name__}>"
