"""Bitvector expression library: the reproduction's z3 substitute (§6.1).

Provides immutable bitvector expressions, a rewriting simplifier, and a
concrete evaluator.  The pseudocode symbolic evaluator produces these
formulas; the VIDL lifter consumes them after simplification.
"""

from repro.bitvector.eval import BVEvalError, evaluate, evaluate_binary
from repro.bitvector.expr import (
    BVBinary,
    BVCast,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVOps,
    BVUnary,
    BVVar,
    bv_binary,
    bv_concat,
    bv_const,
    bv_extract,
    bv_ite,
    bv_sext,
    bv_trunc,
    bv_var,
    bv_zext,
    expr_size,
    free_variables,
)
from repro.bitvector.printer import format_expr
from repro.bitvector.simplify import simplify

__all__ = [
    "BVEvalError",
    "evaluate",
    "evaluate_binary",
    "BVBinary",
    "BVCast",
    "BVConcat",
    "BVConst",
    "BVExpr",
    "BVExtract",
    "BVIte",
    "BVOps",
    "BVUnary",
    "BVVar",
    "bv_binary",
    "bv_concat",
    "bv_const",
    "bv_extract",
    "bv_ite",
    "bv_sext",
    "bv_trunc",
    "bv_var",
    "bv_zext",
    "expr_size",
    "free_variables",
    "format_expr",
    "simplify",
]
