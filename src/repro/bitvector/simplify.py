"""Rewriting simplifier for bitvector expressions.

Plays the role of z3's ``simplify()`` in the paper's pipeline (§6.1): the
symbolic evaluator produces formulas that are "unnecessarily complicated ...
because of the naive implementation of partial bit-vector updates and
predicated updates", and this pass reduces them to expressions that reflect
the high-level intent — in particular, per-output-lane expressions over
element-aligned slices of the inputs, which is what the VIDL lifter needs.

The simplifier is a bottom-up rewriter with memoization; rules are applied
at each node until a fixpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bitvector.eval import BVEvalError, evaluate
from repro.bitvector.expr import (
    BVBinary,
    BVCast,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVOps,
    BVUnary,
    BVVar,
    bv_concat,
    bv_const,
    bv_extract,
    bv_sext,
    bv_zext,
)

# Ops whose low bits depend only on the low bits of their operands, so an
# Extract from bit 0 distributes over them.
_LOW_BITS_OPS = frozenset({"add", "sub", "mul"})
_BITWISE_OPS = frozenset({"and", "or", "xor"})

_MAX_REWRITE_ITERATIONS = 64


def simplify(expr: BVExpr) -> BVExpr:
    """Return an equivalent, (usually) smaller expression."""
    return _Simplifier().run(expr)


class _Simplifier:
    def __init__(self) -> None:
        self._memo: Dict[BVExpr, BVExpr] = {}

    def run(self, expr: BVExpr) -> BVExpr:
        cached = self._memo.get(expr)
        if cached is not None:
            return cached
        result = self._rebuild(expr)
        for _ in range(_MAX_REWRITE_ITERATIONS):
            rewritten = self._rewrite(result)
            if rewritten is None:
                break
            result = self._rebuild(rewritten)
        self._memo[expr] = result
        return result

    def _rebuild(self, expr: BVExpr) -> BVExpr:
        """Simplify children, then constant-fold if possible."""
        if isinstance(expr, (BVVar, BVConst)):
            return expr
        if isinstance(expr, BVExtract):
            expr = bv_extract(expr.hi, expr.lo, self.run(expr.operand))
        elif isinstance(expr, BVConcat):
            expr = bv_concat([self.run(p) for p in expr.parts])
        elif isinstance(expr, BVBinary):
            expr = BVBinary(expr.op, self.run(expr.lhs), self.run(expr.rhs))
        elif isinstance(expr, BVUnary):
            expr = BVUnary(expr.op, self.run(expr.operand))
        elif isinstance(expr, BVCast):
            expr = BVCast(expr.op, self.run(expr.operand), expr.width)
        elif isinstance(expr, BVIte):
            expr = BVIte(
                self.run(expr.cond),
                self.run(expr.on_true),
                self.run(expr.on_false),
            )
        folded = _try_fold(expr)
        return folded if folded is not None else expr

    # -- the rewrite rules ---------------------------------------------------

    def _rewrite(self, expr: BVExpr) -> Optional[BVExpr]:
        """Apply one rewrite step; return None when no rule fires."""
        if isinstance(expr, BVExtract):
            return _rewrite_extract(expr)
        if isinstance(expr, BVConcat):
            return _rewrite_concat(expr)
        if isinstance(expr, BVIte):
            return _rewrite_ite(expr)
        if isinstance(expr, BVBinary):
            return _rewrite_binary(expr)
        if isinstance(expr, BVUnary):
            return _rewrite_unary(expr)
        if isinstance(expr, BVCast):
            return _rewrite_cast(expr)
        return None


def _try_fold(expr: BVExpr) -> Optional[BVConst]:
    """Constant-fold a node whose children are all constants."""
    if isinstance(expr, BVConst):
        return None
    children = expr.children()
    if not children or not all(isinstance(c, BVConst) for c in children):
        return None
    try:
        return bv_const(evaluate(expr, {}), expr.width)
    except BVEvalError:
        return None


def _rewrite_extract(expr: BVExtract) -> Optional[BVExpr]:
    hi, lo, operand = expr.hi, expr.lo, expr.operand
    if isinstance(operand, BVExtract):
        return bv_extract(hi + operand.lo, lo + operand.lo, operand.operand)
    if isinstance(operand, BVConcat):
        return _extract_of_concat(hi, lo, operand)
    if isinstance(operand, BVIte):
        return BVIte(
            operand.cond,
            bv_extract(hi, lo, operand.on_true),
            bv_extract(hi, lo, operand.on_false),
        )
    if isinstance(operand, BVCast) and operand.op == "zext":
        inner = operand.operand
        if hi < inner.width:
            return bv_extract(hi, lo, inner)
        if lo >= inner.width:
            return bv_const(0, hi - lo + 1)
        if lo == 0:
            return bv_zext(inner, hi + 1)
        return None
    if isinstance(operand, BVCast) and operand.op == "sext":
        inner = operand.operand
        if hi < inner.width:
            return bv_extract(hi, lo, inner)
        if lo == 0:
            return bv_sext(inner, hi + 1)
        return None
    if isinstance(operand, BVBinary) and operand.op in _BITWISE_OPS:
        return BVBinary(
            operand.op,
            bv_extract(hi, lo, operand.lhs),
            bv_extract(hi, lo, operand.rhs),
        )
    if (
        isinstance(operand, BVBinary)
        and operand.op in _LOW_BITS_OPS
        and lo == 0
    ):
        return BVBinary(
            operand.op,
            bv_extract(hi, 0, operand.lhs),
            bv_extract(hi, 0, operand.rhs),
        )
    if isinstance(operand, BVUnary) and operand.op == "not":
        return BVUnary("not", bv_extract(hi, lo, operand.operand))
    if isinstance(operand, BVUnary) and operand.op == "neg" and lo == 0:
        return BVUnary("neg", bv_extract(hi, 0, operand.operand))
    return None


def _extract_of_concat(hi: int, lo: int, concat: BVConcat) -> BVExpr:
    """Slice an extract through a concat's parts."""
    # Walk parts from least significant (last) upward.
    pieces: List[BVExpr] = []  # least significant first
    bit = 0
    for part in reversed(concat.parts):
        part_lo, part_hi = bit, bit + part.width - 1
        if part_hi >= lo and part_lo <= hi:
            sub_lo = max(lo, part_lo) - part_lo
            sub_hi = min(hi, part_hi) - part_lo
            pieces.append(bv_extract(sub_hi, sub_lo, part))
        bit += part.width
    pieces.reverse()  # back to most-significant-first
    return bv_concat(pieces)


def _rewrite_concat(expr: BVConcat) -> Optional[BVExpr]:
    parts = list(expr.parts)
    # Flatten nested concats.
    if any(isinstance(p, BVConcat) for p in parts):
        flat: List[BVExpr] = []
        for p in parts:
            if isinstance(p, BVConcat):
                flat.extend(p.parts)
            else:
                flat.append(p)
        return bv_concat(flat)
    changed = False
    merged: List[BVExpr] = []
    for part in parts:
        prev = merged[-1] if merged else None
        if isinstance(prev, BVConst) and isinstance(part, BVConst):
            merged[-1] = bv_const(
                (prev.value << part.width) | part.value,
                prev.width + part.width,
            )
            changed = True
            continue
        if (
            isinstance(prev, BVExtract)
            and isinstance(part, BVExtract)
            and prev.operand == part.operand
            and prev.lo == part.hi + 1
        ):
            merged[-1] = bv_extract(prev.hi, part.lo, prev.operand)
            changed = True
            continue
        # An extract adjacent to the full operand's top/bottom.
        if (
            isinstance(prev, BVExtract)
            and prev.operand == part
            and prev.lo == part.width
        ):
            merged[-1] = bv_extract(prev.hi, 0, prev.operand)
            changed = True
            continue
        merged.append(part)
    if changed:
        return bv_concat(merged)
    return None


def _rewrite_ite(expr: BVIte) -> Optional[BVExpr]:
    if isinstance(expr.cond, BVConst):
        return expr.on_true if expr.cond.value else expr.on_false
    if expr.on_true == expr.on_false:
        return expr.on_true
    if (
        expr.width == 1
        and isinstance(expr.on_true, BVConst)
        and isinstance(expr.on_false, BVConst)
        and expr.on_true.value == 1
        and expr.on_false.value == 0
    ):
        return expr.cond
    return None


def _is_zero(expr: BVExpr) -> bool:
    return isinstance(expr, BVConst) and expr.value == 0


def _is_ones(expr: BVExpr) -> bool:
    return (
        isinstance(expr, BVConst)
        and expr.value == (1 << expr.width) - 1
    )


def _is_one(expr: BVExpr) -> bool:
    return isinstance(expr, BVConst) and expr.value == 1


def _rewrite_binary(expr: BVBinary) -> Optional[BVExpr]:
    op, lhs, rhs = expr.op, expr.lhs, expr.rhs
    # Canonicalize constants to the right for commutative ops.
    if op in BVOps.COMMUTATIVE and isinstance(lhs, BVConst) and not isinstance(
        rhs, BVConst
    ):
        return BVBinary(op, rhs, lhs)
    if op == "add" and _is_zero(rhs):
        return lhs
    if op == "sub" and _is_zero(rhs):
        return lhs
    if op == "mul" and _is_one(rhs):
        return lhs
    if op == "mul" and _is_zero(rhs):
        return rhs
    if op == "and" and _is_zero(rhs):
        return rhs
    if op == "and" and _is_ones(rhs):
        return lhs
    if op == "or" and _is_zero(rhs):
        return lhs
    if op == "or" and _is_ones(rhs):
        return rhs
    if op == "xor" and _is_zero(rhs):
        return lhs
    if op in ("shl", "lshr", "ashr") and _is_zero(rhs):
        return lhs
    if op == "sub" and lhs == rhs:
        return bv_const(0, expr.width)
    if op == "xor" and lhs == rhs:
        return bv_const(0, expr.width)
    return None


def _rewrite_unary(expr: BVUnary) -> Optional[BVExpr]:
    inner = expr.operand
    if isinstance(inner, BVUnary) and inner.op == expr.op and expr.op in (
        "not",
        "neg",
        "fneg",
    ):
        return inner.operand
    return None


def _rewrite_cast(expr: BVCast) -> Optional[BVExpr]:
    inner = expr.operand
    if expr.op in ("sext", "zext") and isinstance(inner, BVCast):
        if inner.op == expr.op:
            return BVCast(expr.op, inner.operand, expr.width)
        if inner.op == "zext" and expr.op == "sext":
            # sext(zext(x)) == zext(x) because the top bit is already 0.
            return BVCast("zext", inner.operand, expr.width)
    return None
