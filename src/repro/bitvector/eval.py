"""Concrete evaluation of bitvector expressions.

Used for (a) constant folding inside the simplifier and (b) random-testing
the translated semantics against the pseudocode interpreter (§6.1:
"We validated the SMT formulas by random testing").
"""

from __future__ import annotations

from typing import Dict

from repro.bitvector.expr import (
    BVBinary,
    BVCast,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVOps,
    BVUnary,
    BVVar,
)
from repro.utils.fp import float_from_bits, float_to_bits, round_to_width
from repro.utils.intmath import mask, sign_extend, to_signed


class BVEvalError(RuntimeError):
    """Raised on undefined behaviour during concrete evaluation."""


def evaluate(expr: BVExpr, env: Dict[str, int]) -> int:
    """Evaluate ``expr`` with variables bound to unsigned ints in ``env``."""
    if isinstance(expr, BVConst):
        return expr.value
    if isinstance(expr, BVVar):
        try:
            return mask(env[expr.name], expr.width)
        except KeyError:
            raise BVEvalError(f"unbound variable {expr.name!r}")
    if isinstance(expr, BVExtract):
        value = evaluate(expr.operand, env)
        return (value >> expr.lo) & ((1 << expr.width) - 1)
    if isinstance(expr, BVConcat):
        result = 0
        for part in expr.parts:
            result = (result << part.width) | evaluate(part, env)
        return result
    if isinstance(expr, BVIte):
        cond = evaluate(expr.cond, env)
        return evaluate(expr.on_true if cond else expr.on_false, env)
    if isinstance(expr, BVUnary):
        value = evaluate(expr.operand, env)
        if expr.op == "not":
            return mask(~value, expr.width)
        if expr.op == "neg":
            return mask(-value, expr.width)
        if expr.op == "fneg":
            f = float_from_bits(value, expr.width)
            return float_to_bits(-f, expr.width)
        raise BVEvalError(f"unknown unary {expr.op}")
    if isinstance(expr, BVCast):
        value = evaluate(expr.operand, env)
        return _eval_cast(expr.op, value, expr.operand.width, expr.width)
    if isinstance(expr, BVBinary):
        lhs = evaluate(expr.lhs, env)
        rhs = evaluate(expr.rhs, env)
        return evaluate_binary(expr.op, lhs, rhs, expr.lhs.width)
    raise BVEvalError(f"cannot evaluate {type(expr).__name__}")


def _eval_cast(op: str, value: int, src_width: int, dest_width: int) -> int:
    if op == "sext":
        return sign_extend(value, src_width, dest_width)
    if op == "zext":
        return value
    if op in ("fpext", "fptrunc"):
        f = float_from_bits(value, src_width)
        return float_to_bits(round_to_width(f, dest_width), dest_width)
    if op == "sitofp":
        f = round_to_width(float(to_signed(value, src_width)), dest_width)
        return float_to_bits(f, dest_width)
    if op == "fptosi":
        f = float_from_bits(value, src_width)
        return mask(int(f), dest_width)
    raise BVEvalError(f"unknown cast {op}")


def evaluate_binary(op: str, lhs: int, rhs: int, width: int) -> int:
    """Evaluate a binary bitvector op on unsigned payloads."""
    if op in BVOps.FLOAT_BINARY or op in BVOps.FCMP:
        a = float_from_bits(lhs, width)
        b = float_from_bits(rhs, width)
        if op == "fadd":
            return float_to_bits(round_to_width(a + b, width), width)
        if op == "fsub":
            return float_to_bits(round_to_width(a - b, width), width)
        if op == "fmul":
            return float_to_bits(round_to_width(a * b, width), width)
        if op == "fdiv":
            if b == 0.0:
                raise BVEvalError("float division by zero")
            return float_to_bits(round_to_width(a / b, width), width)
        if op == "oeq":
            return int(a == b)
        if op == "one":
            return int(a != b)
        if op == "olt":
            return int(a < b)
        if op == "ole":
            return int(a <= b)
        if op == "ogt":
            return int(a > b)
        if op == "oge":
            return int(a >= b)
    if op == "add":
        return mask(lhs + rhs, width)
    if op == "sub":
        return mask(lhs - rhs, width)
    if op == "mul":
        return mask(lhs * rhs, width)
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        if rhs >= width:
            return 0  # SMT-LIB bvshl semantics
        return mask(lhs << rhs, width)
    if op == "lshr":
        if rhs >= width:
            return 0
        return lhs >> rhs
    if op == "ashr":
        if rhs >= width:
            rhs = width - 1
        return mask(to_signed(lhs, width) >> rhs, width)
    if op in ("udiv", "urem"):
        if rhs == 0:
            raise BVEvalError("division by zero")
        return lhs // rhs if op == "udiv" else lhs % rhs
    if op in ("sdiv", "srem"):
        sa, sb = to_signed(lhs, width), to_signed(rhs, width)
        if sb == 0:
            raise BVEvalError("division by zero")
        quotient = int(sa / sb)
        if op == "sdiv":
            return mask(quotient, width)
        return mask(sa - quotient * sb, width)
    if op == "eq":
        return int(lhs == rhs)
    if op == "ne":
        return int(lhs != rhs)
    signed = op in ("slt", "sle", "sgt", "sge")
    if signed:
        lhs, rhs = to_signed(lhs, width), to_signed(rhs, width)
    if op in ("slt", "ult"):
        return int(lhs < rhs)
    if op in ("sle", "ule"):
        return int(lhs <= rhs)
    if op in ("sgt", "ugt"):
        return int(lhs > rhs)
    if op in ("sge", "uge"):
        return int(lhs >= rhs)
    raise BVEvalError(f"unknown binary op {op}")
