"""Size-capped LRU eviction for one-file-per-key disk cache tiers.

Both on-disk caches (:mod:`repro.serve.cache` and
:mod:`repro.vectorizer.warm`) store one JSON file per content-addressed
key and, left alone, grow without bound across runs.  This module gives
them a shared eviction discipline:

* recency is file mtime — a disk *hit* touches the entry
  (:func:`mark_used`), so reads refresh position exactly like an
  in-memory LRU's ``move_to_end``;
* after every disk write, :func:`enforce_disk_limit` deletes
  oldest-first until the tier's total size is back under its byte cap.
  The cap is strict: a brand-new entry larger than the whole cap is
  itself deleted (the cache degrades to a miss, never to an unbounded
  directory).

Caps come from ``REPRO_SERVE_CACHE_LIMIT`` / ``REPRO_WARM_CACHE_LIMIT``
(or explicit constructor arguments); values are bytes, with optional
``K`` / ``M`` / ``G`` suffixes (``"16M"``).  Unset or empty means
unlimited, preserving the previous behaviour.

Eviction races are benign by construction: every entry is
self-validating (schema + key + body hash), deletes of already-deleted
files are ignored, and losing an entry only ever costs a recompute.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

_SUFFIX_MULTIPLIERS = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}


def parse_size_limit(text: Optional[str]) -> Optional[int]:
    """Parse a byte-size knob: ``"1048576"``, ``"256K"``, ``"16M"``,
    ``"1G"``.  ``None`` / empty / whitespace mean "no limit" (None).

    Raises :class:`ValueError` on malformed input — a typo'd limit
    silently meaning "unlimited" is the failure mode this knob exists
    to prevent.
    """
    if text is None:
        return None
    text = text.strip()
    if not text:
        return None
    multiplier = 1
    if text[-1].upper() in _SUFFIX_MULTIPLIERS:
        multiplier = _SUFFIX_MULTIPLIERS[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"malformed cache size limit {text!r}; expected bytes with "
            f"an optional K/M/G suffix (e.g. '16M')"
        ) from None
    if value < 0:
        raise ValueError(f"cache size limit must be >= 0, got {value}")
    return value * multiplier


def limit_from_env(var: str) -> Optional[int]:
    """Read a size cap from the environment (None when unset/empty)."""
    return parse_size_limit(os.environ.get(var))


def mark_used(path: str) -> None:
    """Refresh an entry's recency (mtime) after a disk hit.

    Best-effort: a concurrent eviction losing the race is a no-op."""
    try:
        os.utime(path, None)
    except OSError:
        pass


def _scan(directory: str, suffix: str) -> List[Tuple[float, str, int]]:
    """All entries as (mtime, path, size), oldest first.

    Ties (filesystems with coarse mtime granularity) break by name so
    eviction order is deterministic."""
    entries = []
    for name in os.listdir(directory):
        if not name.endswith(suffix):
            continue
        path = os.path.join(directory, name)
        try:
            stat = os.stat(path)
        except OSError:
            continue  # concurrently deleted
        entries.append((stat.st_mtime, path, stat.st_size))
    entries.sort()
    return entries


def disk_tier_size(directory: Optional[str],
                   suffix: str = ".json") -> int:
    """Total bytes currently held by a tier's entries."""
    if directory is None or not os.path.isdir(directory):
        return 0
    return sum(size for _, _, size in _scan(directory, suffix))


def enforce_disk_limit(directory: Optional[str],
                       limit_bytes: Optional[int],
                       suffix: str = ".json") -> int:
    """Delete oldest entries until the tier fits ``limit_bytes``.

    Returns the number of entries evicted.  No-op (0) without a
    directory or a limit.
    """
    if directory is None or limit_bytes is None:
        return 0
    entries = _scan(directory, suffix)
    total = sum(size for _, _, size in entries)
    evicted = 0
    for _, path, size in entries:
        if total <= limit_bytes:
            break
        try:
            os.unlink(path)
        except OSError:
            pass  # lost a race; the space is freed either way
        total -= size
        evicted += 1
    return evicted
