"""The ``repro bench`` harness: the repository's perf trajectory.

Runs the bundled kernel × target matrix through ``vectorize()`` with
tracing and counters enabled, and records for each cell

* per-phase wall times (from the span tree, flattened by name),
* pipeline counters (beam work, producer-cache behaviour, codegen
  data movement),
* model costs: scalar cost, vector cost, and their ratio
  (``cost_ratio < 1`` means the vectorizer won).

The result is written as ``BENCH_vegen.json`` at the repo root so every
future PR has a baseline to compare against: cost ratios are
deterministic (pure model arithmetic) and treated as a hard contract by
:func:`compare_bench`; wall times are machine-dependent and only ever
reported informationally.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Schema identifier; bump on any breaking change to the document shape.
#: v2 added the per-cell ``optimality_gap`` column (beam cost minus the
#: exhaustive branch-and-bound cost when the bounded exact pass ran to
#: completion, explicit ``null`` when its node budget was exhausted).
BENCH_SCHEMA = "repro-bench/v2"

#: Schemas :func:`validate_bench` accepts: current plus still-readable
#: older revisions (v1 documents simply lack ``optimality_gap``).
KNOWN_BENCH_SCHEMAS = ("repro-bench/v1", "repro-bench/v2")

#: Default node budget for the per-cell exact pass behind
#: ``optimality_gap``: enough to prove the small/medium kernels optimal,
#: bounded so the heavy cells (dsp_idct8, dsp_sbc) report ``null`` in
#: seconds instead of minutes.  This is the *quick probe* budget; the
#: *proof* budget for targeted single-kernel runs is
#: :data:`repro.vectorizer.context.DEFAULT_EXACT_NODE_BUDGET` (8x
#: larger, the ``repro vectorize --exact`` default) — the two are
#: deliberately distinct because the bench pass runs 132 cells and the
#: proof path runs one.
DEFAULT_GAP_NODE_BUDGET = 50000

#: The default benchmark target matrix (§7 evaluates the x86 ISAs;
#: neon128 is the second-family generator proof).
DEFAULT_TARGETS: Tuple[str, ...] = ("sse4", "avx2", "avx512_vnni",
                                    "neon128")

#: Default beam width: wide enough to exercise the real search, small
#: enough that the full 33-kernel × 3-target matrix stays fast.
DEFAULT_BEAM_WIDTH = 8

#: Default output file name (written at the current working directory,
#: conventionally the repo root).
DEFAULT_BENCH_PATH = "BENCH_vegen.json"

#: Cost-ratio slack for regression detection: ratios are deterministic,
#: so the tolerance only absorbs float formatting, not noise.
DEFAULT_COST_TOLERANCE = 0.01


def bench_one(kernel_name: str, function, target: str,
              beam_width: int = DEFAULT_BEAM_WIDTH,
              session=None, profile_top: int = 0,
              verify: bool = True, warm: bool = False,
              gap_node_budget: int = DEFAULT_GAP_NODE_BUDGET) -> Dict:
    """Benchmark one (kernel, target) cell with observability enabled.

    ``session`` (a :class:`repro.session.VectorizationSession`) lets the
    serial harness amortize target/pipeline setup across cells; omitted,
    a one-shot session is created (identical output either way).

    ``profile_top > 0`` runs the cell under :mod:`cProfile` and records
    the top-N functions by cumulative time in a ``profile`` list next to
    ``phases`` (``repro bench --profile``).  Profiling adds tracing
    overhead, so profiled wall times are not comparable to unprofiled
    runs — model costs and counters are unaffected.

    ``verify=True`` (the default) additionally runs TransVal translation
    validation over the emitted program and records its proof status in
    a ``verify`` column (``proved``/``validated``/``failed``) plus
    ``transval.*`` counters.  Verification runs after ``wall_s`` is
    measured, so vectorization wall times are unaffected.

    ``warm=True`` turns on the content-addressed warm-start cost cache
    (``VectorizerConfig(warm_start=True)``; point ``REPRO_WARM_CACHE_DIR``
    at a directory for cross-process reuse).  The warm-start contract
    guarantees identical packs and costs to a cold run — only wall
    times and ``beam.warmstart_*``/node counters change — so warm and
    cold documents ``--compare`` clean against each other.

    ``gap_node_budget`` bounds the exhaustive branch-and-bound pass
    behind the ``optimality_gap`` column: after the measured run, the
    cell is re-vectorized with ``exact=True`` under this budget and the
    column records ``beam vector cost - exact vector cost`` (``0.0``
    means the beam already found the proved optimum) or ``null`` when
    the budget was exhausted before the proof finished.  ``0`` disables
    the exact pass entirely (the column is then an explicit ``null``).
    The exact pass runs after ``wall_s``/``phases`` are measured and
    never touches the recorded costs, so v1 trajectories compare clean
    against v2 documents.
    """
    from repro.obs.counters import Counters
    from repro.obs.trace import Tracer
    from repro.session import VectorizationSession
    from repro.vectorizer.context import VectorizerConfig

    if session is None:
        config = VectorizerConfig(beam_width=beam_width,
                                  warm_start=warm) if warm else None
        session = VectorizationSession(target=target,
                                       beam_width=beam_width,
                                       config=config)
    tracer = Tracer()
    counters = Counters()
    profiler = None
    if profile_top > 0:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    start = time.perf_counter()
    result = session.vectorize(function, tracer=tracer,
                               counters=counters)
    wall_s = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
    verify_status = None
    if verify:
        from repro.analysis.transval import validate_result

        report = validate_result(result, counters=counters)
        verify_status = report.status
    optimality_gap = None
    if gap_node_budget > 0:
        exact_counters = Counters()
        exact_session = VectorizationSession(
            target=target, beam_width=beam_width,
            config=VectorizerConfig(beam_width=beam_width, exact=True,
                                    exact_node_budget=gap_node_budget),
        )
        exact_result = exact_session.vectorize(function,
                                               counters=exact_counters)
        if exact_counters.get("beam.exact_proved") > 0:
            optimality_gap = round(
                result.cost.total - exact_result.cost.total, 6
            )
    phases = tracer.phase_times()
    phases.pop("vectorize", None)  # the root duplicates wall_s
    scalar = result.scalar_cost
    vector = result.cost.total
    cell = {
        "kernel": kernel_name,
        "target": target,
        "vectorized": result.vectorized,
        "num_packs": len(result.packs),
        "scalar_cost": scalar,
        "vector_cost": vector,
        "cost_ratio": (vector / scalar) if scalar > 0 else 1.0,
        "wall_s": wall_s,
        "phases": {name: round(dur, 6)
                   for name, dur in sorted(phases.items())},
        "counters": counters.as_dict(),
        # Number (0.0 = beam proved optimal) or explicit null (exact
        # node budget exhausted / exact pass disabled) — never omitted.
        "optimality_gap": optimality_gap,
    }
    if verify_status is not None:
        cell["verify"] = verify_status
    if profiler is not None:
        cell["profile"] = _top_profile_entries(profiler, profile_top)
    return cell


def _top_profile_entries(profiler, top: int) -> List[Dict]:
    """The profiler's top-``top`` functions by cumulative time.

    Each entry is ``{"function", "ncalls", "tottime", "cumtime"}`` with
    the function named ``file:line(name)`` (paths trimmed to the last
    two components so documents are machine-independent-ish)."""
    import pstats

    stats = pstats.Stats(profiler)
    entries = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        short = "/".join(filename.replace("\\", "/").split("/")[-2:])
        entries.append({
            "function": f"{short}:{lineno}({name})",
            "ncalls": nc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        })
    entries.sort(key=lambda e: (-e["cumtime"], e["function"]))
    return entries[:top]


def _bench_cell(task: Tuple[str, str, int, int, bool, bool, int]) -> Dict:
    """Process-pool worker: benchmark one (kernel, target) cell.

    Takes only picklable names — each worker process rebuilds the kernel
    from the bundled sources and populates its own target registry, so
    no IR or target state ever crosses the process boundary."""
    from repro.kernels import all_kernels

    (kernel_name, target, beam_width, profile_top, verify, warm,
     gap_node_budget) = task
    return bench_one(kernel_name, all_kernels()[kernel_name], target,
                     beam_width, profile_top=profile_top, verify=verify,
                     warm=warm, gap_node_budget=gap_node_budget)


def run_bench(kernel_names: Optional[Sequence[str]] = None,
              targets: Sequence[str] = DEFAULT_TARGETS,
              beam_width: int = DEFAULT_BEAM_WIDTH,
              progress: Optional[Callable[[str], None]] = None,
              jobs: int = 1, profile_top: int = 0,
              verify: bool = True, warm: bool = False,
              gap_node_budget: int = DEFAULT_GAP_NODE_BUDGET) -> Dict:
    """Run the kernel × target matrix; returns the bench document.

    ``jobs > 1`` fans the cells out over a ``ProcessPoolExecutor``.
    Results are merged back in the serial (target-outer, kernel-inner)
    order, so the document is identical to a ``jobs=1`` run except for
    wall times and the recorded ``jobs`` value.

    ``profile_top > 0`` profiles every cell under :mod:`cProfile` and
    records each cell's top-N cumulative functions (see
    :func:`bench_one`).  ``verify=False`` skips the per-cell TransVal
    verification column.  ``warm=True`` enables the warm-start cost
    cache and ``gap_node_budget`` bounds the ``optimality_gap`` exact
    pass (see :func:`bench_one` for both)."""
    from repro import __version__
    from repro.kernels import all_kernels

    kernels = all_kernels()
    if kernel_names is None:
        selected = sorted(kernels)
    else:
        unknown = [n for n in kernel_names if n not in kernels]
        if unknown:
            raise KeyError(
                f"unknown kernels: {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(kernels))}"
            )
        selected = list(kernel_names)

    tasks = [(name, target, beam_width, profile_top, verify, warm,
              gap_node_budget)
             for target in targets for name in selected]
    total_start = time.perf_counter()
    if jobs > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # executor.map preserves submission order: the merge is
            # deterministic no matter which worker finishes first.
            if progress is not None:
                progress(f"bench {len(tasks)} cells over {jobs} workers")
            results = list(pool.map(_bench_cell, tasks))
    else:
        from repro.session import VectorizationSession
        from repro.vectorizer.context import VectorizerConfig

        results = []
        sessions: Dict[Tuple[str, int], object] = {}
        for name, target, width, top, do_verify, do_warm, budget in tasks:
            if progress is not None:
                progress(f"bench {name} on {target}")
            key = (target, width)
            if key not in sessions:
                config = VectorizerConfig(beam_width=width,
                                          warm_start=True) \
                    if do_warm else None
                sessions[key] = VectorizationSession(target=target,
                                                     beam_width=width,
                                                     config=config)
            results.append(
                bench_one(name, kernels[name], target, width,
                          session=sessions[key], profile_top=top,
                          verify=do_verify, warm=do_warm,
                          gap_node_budget=budget)
            )
    total_wall = time.perf_counter() - total_start

    ratios = [r["cost_ratio"] for r in results if r["cost_ratio"] > 0]
    geomean = (
        math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        if ratios else 1.0
    )
    gaps = [r["optimality_gap"] for r in results]
    summary = {
        "num_results": len(results),
        "num_vectorized": sum(1 for r in results if r["vectorized"]),
        "geomean_cost_ratio": geomean,
        "total_wall_s": round(total_wall, 3),
        "num_gap_proved": sum(1 for g in gaps if g is not None),
        "num_gap_zero": sum(1 for g in gaps if g == 0),
    }
    if verify:
        summary["num_proved"] = sum(
            1 for r in results if r.get("verify") == "proved"
        )
    return {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S",
                                      time.gmtime()),
        "python": platform.python_version(),
        "beam_width": beam_width,
        "jobs": jobs,
        "warm_start": warm,
        "gap_node_budget": gap_node_budget,
        "targets": list(targets),
        "kernels": selected,
        "results": results,
        "summary": summary,
    }


# -- schema ------------------------------------------------------------

_RESULT_FIELDS = {
    "kernel": str,
    "target": str,
    "vectorized": bool,
    "num_packs": int,
    "scalar_cost": (int, float),
    "vector_cost": (int, float),
    "cost_ratio": (int, float),
    "wall_s": (int, float),
    "phases": dict,
    "counters": dict,
}


def validate_bench(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid bench document.

    Accepts every schema in :data:`KNOWN_BENCH_SCHEMAS`: v1 documents
    (no ``optimality_gap``) stay loadable as ``--compare`` baselines;
    v2 documents must carry the column in *every* cell — a number or an
    explicit ``null``, never a silent omission."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    schema = doc.get("schema")
    if schema not in KNOWN_BENCH_SCHEMAS:
        raise ValueError(
            f"unknown bench schema {schema!r}; "
            f"expected one of {KNOWN_BENCH_SCHEMAS!r}"
        )
    for field in ("version", "beam_width", "targets", "kernels",
                  "results", "summary"):
        if field not in doc:
            raise ValueError(f"bench document missing field {field!r}")
    if not isinstance(doc["results"], list):
        raise ValueError("'results' must be a list")
    for i, result in enumerate(doc["results"]):
        for field, types in _RESULT_FIELDS.items():
            if field not in result:
                raise ValueError(f"results[{i}] missing field {field!r}")
            if not isinstance(result[field], types):
                raise ValueError(
                    f"results[{i}].{field} has type "
                    f"{type(result[field]).__name__}"
                )
        if schema != "repro-bench/v1":
            if "optimality_gap" not in result:
                raise ValueError(
                    f"results[{i}] missing field 'optimality_gap' "
                    f"(v2 cells must report a number or explicit null)"
                )
            gap = result["optimality_gap"]
            if gap is not None and not isinstance(gap, (int, float)):
                raise ValueError(
                    f"results[{i}].optimality_gap must be a number "
                    f"or null"
                )
        for name, value in result["phases"].items():
            if not isinstance(name, str) or \
                    not isinstance(value, (int, float)):
                raise ValueError(f"results[{i}].phases malformed")
        for name, value in result["counters"].items():
            if not isinstance(name, str) or not isinstance(value, int):
                raise ValueError(f"results[{i}].counters malformed")
        if "verify" in result:  # optional: present unless --no-verify
            if not isinstance(result["verify"], str):
                raise ValueError(f"results[{i}].verify must be a string")
        if "profile" in result:  # optional: present under --profile
            if not isinstance(result["profile"], list):
                raise ValueError(f"results[{i}].profile must be a list")
            for j, entry in enumerate(result["profile"]):
                if not isinstance(entry, dict) or \
                        not isinstance(entry.get("function"), str) or \
                        not isinstance(entry.get("ncalls"), int) or \
                        not isinstance(entry.get("tottime"),
                                       (int, float)) or \
                        not isinstance(entry.get("cumtime"),
                                       (int, float)):
                    raise ValueError(
                        f"results[{i}].profile[{j}] malformed"
                    )
    seen = set()
    for result in doc["results"]:
        key = (result["kernel"], result["target"])
        if key in seen:
            raise ValueError(f"duplicate result for {key}")
        seen.add(key)


def write_bench(doc: Dict, path: str = DEFAULT_BENCH_PATH) -> None:
    validate_bench(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: str) -> Dict:
    with open(path) as handle:
        doc = json.load(handle)
    validate_bench(doc)
    return doc


# -- comparison --------------------------------------------------------

def compare_bench(old: Dict, new: Dict,
                  cost_tolerance: float = DEFAULT_COST_TOLERANCE
                  ) -> Tuple[List[str], List[str]]:
    """Compare two bench documents.

    Returns ``(regressions, notes)``: regressions are hard failures
    (cost ratio got worse beyond tolerance, the pack count changed, a
    kernel stopped vectorizing, or a previously-covered cell
    disappeared); notes are informational (wall-time deltas, new
    coverage).  Schema-tolerant: a v1 baseline compares clean against a
    v2 document — the added ``optimality_gap`` column is ignored here
    (it never feeds the search, so it cannot regress costs).
    """
    regressions: List[str] = []
    notes: List[str] = []
    old_by_key = {(r["kernel"], r["target"]): r for r in old["results"]}
    new_by_key = {(r["kernel"], r["target"]): r for r in new["results"]}

    for key in sorted(old_by_key):
        kernel, target = key
        old_r = old_by_key[key]
        new_r = new_by_key.get(key)
        if new_r is None:
            regressions.append(
                f"{kernel}/{target}: present in old bench but missing "
                f"from new"
            )
            continue
        if old_r["vectorized"] and not new_r["vectorized"]:
            regressions.append(
                f"{kernel}/{target}: was vectorized, now scalar"
            )
        if old_r["num_packs"] != new_r["num_packs"]:
            regressions.append(
                f"{kernel}/{target}: pack count changed "
                f"{old_r['num_packs']} -> {new_r['num_packs']}"
            )
        old_ratio = old_r["cost_ratio"]
        new_ratio = new_r["cost_ratio"]
        if new_ratio > old_ratio * (1.0 + cost_tolerance):
            regressions.append(
                f"{kernel}/{target}: cost ratio regressed "
                f"{old_ratio:.4f} -> {new_ratio:.4f} "
                f"({(new_ratio / old_ratio - 1) * 100:+.1f}%)"
            )
        elif new_ratio < old_ratio / (1.0 + cost_tolerance):
            notes.append(
                f"{kernel}/{target}: cost ratio improved "
                f"{old_ratio:.4f} -> {new_ratio:.4f}"
            )
        old_wall = old_r["wall_s"]
        new_wall = new_r["wall_s"]
        if old_wall > 0 and (new_wall > old_wall * 1.5 or
                             new_wall < old_wall / 1.5):
            notes.append(
                f"{kernel}/{target}: wall time {old_wall:.3f}s -> "
                f"{new_wall:.3f}s (informational; machine-dependent)"
            )
    for key in sorted(set(new_by_key) - set(old_by_key)):
        notes.append(f"{key[0]}/{key[1]}: new coverage")
    return regressions, notes


def render_bench_summary(doc: Dict, stream=None) -> None:
    """Print a human-readable table of one bench document."""
    out = stream or sys.stdout
    summary = doc["summary"]
    print(
        f"repro bench: {summary['num_results']} kernel/target cells, "
        f"{summary['num_vectorized']} vectorized, geomean cost ratio "
        f"{summary['geomean_cost_ratio']:.4f} "
        f"(beam width {doc['beam_width']}, "
        f"{summary['total_wall_s']:.1f}s)",
        file=out,
    )
    has_verify = any("verify" in r for r in doc["results"])
    has_gap = any("optimality_gap" in r for r in doc["results"])
    header = (f"{'kernel':28s} {'target':12s} {'ratio':>7s} "
              f"{'packs':>5s} {'wall':>8s}")
    if has_verify:
        header += f" {'verify':>9s}"
    if has_gap:
        header += f" {'gap':>7s}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for result in doc["results"]:
        line = (
            f"{result['kernel']:28s} {result['target']:12s} "
            f"{result['cost_ratio']:7.4f} {result['num_packs']:5d} "
            f"{result['wall_s'] * 1e3:7.1f}ms"
        )
        if has_verify:
            line += f" {result.get('verify', '-'):>9s}"
        if has_gap:
            gap = result.get("optimality_gap")
            line += f" {'null':>7s}" if gap is None else f" {gap:7.1f}"
        print(line, file=out)
