"""Span-based phase tracing for the vectorization pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects, one per
pipeline phase (canonicalize, match-table build, pack selection, codegen,
...), each with wall-clock and monotonic timestamps.  The API is a plain
context manager::

    tracer = Tracer()
    with tracer.span("vectorize", function="dot"):
        with tracer.span("select_packs"):
            ...
    print(tracer.to_json())

Tracing is **off by default** everywhere in the pipeline: when no tracer
is supplied, the singleton :data:`NULL_TRACER` is used, whose ``span()``
returns one preallocated no-op context manager, so the instrumented code
pays a single attribute lookup and method call per phase and nothing per
measurement.

Export formats:

* :meth:`Tracer.to_dict` — nested ``{name, start, duration_s, meta,
  children}`` tree (the round-trippable form);
* :meth:`Tracer.to_trace_events` — flat Chrome ``about:tracing`` /
  Perfetto "trace event" list (``ph: "X"`` complete events with
  microsecond timestamps), loadable by standard trace viewers.

Span names used by the pipeline are a stable, tested contract: see
:data:`SPAN_NAMES`.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

#: The stable span-name contract: every span the pipeline opens uses one
#: of these names.  Renaming an entry is a breaking change to the bench
#: trajectory (``BENCH_*.json`` phase keys) and must be deliberate.
SPAN_NAMES = frozenset({
    "vectorize",          # root: one whole vectorize() call
    "target_build",       # target description resolution (offline phase;
                          # cached after first use per target)
    "canonicalize",       # pattern canonicalization of the input (§6)
    "reassociate",        # optional reduction-chain balancing
    "dep_graph",          # dependence analysis (§4.4 legality substrate)
    "match_table",        # pattern matching / match-table build (§4.3)
    "seed_enumeration",   # store + affinity seed packs (Figure 8)
    "select_packs",       # beam search over the Figure 9 recurrence
    "codegen",            # scheduling + lowering (§4.5)
    "cost_model",         # scalar/vector program costing (§6.2)
    "sanitize",           # repro.analysis sanitizer suite
    "verify",             # TransVal translation validation
})


class Span:
    """One timed phase.  Started/finished by :meth:`Tracer.span`."""

    __slots__ = ("name", "meta", "children", "start_wall", "_start_mono",
                 "duration_s")

    def __init__(self, name: str, meta: Optional[Dict[str, Any]] = None):
        self.name = name
        self.meta = meta or {}
        self.children: List["Span"] = []
        self.start_wall = time.time()
        self._start_mono = time.perf_counter()
        self.duration_s: float = 0.0

    def _finish(self) -> None:
        self.duration_s = time.perf_counter() - self._start_mono

    @property
    def self_time_s(self) -> float:
        """Time spent in this span excluding child spans."""
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first span with the given name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start_wall,
            "duration_s": self.duration_s,
            "meta": dict(self.meta),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls.__new__(cls)
        span.name = data["name"]
        span.meta = dict(data.get("meta", {}))
        span.start_wall = data["start"]
        span._start_mono = 0.0
        span.duration_s = data["duration_s"]
        span.children = [cls.from_dict(c)
                         for c in data.get("children", [])]
        return span

    def phase_times(self) -> Dict[str, float]:
        """Flatten the subtree to ``{span name: summed duration}``."""
        times: Dict[str, float] = {}
        for span in self.walk():
            times[span.name] = times.get(span.name, 0.0) + span.duration_s
        return times

    def __repr__(self) -> str:
        return (f"<Span {self.name} {self.duration_s * 1e3:.2f}ms "
                f"{len(self.children)} children>")


class _SpanContext:
    """Context manager that finishes its span and pops the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span._finish()
        self._tracer._stack.pop()


class Tracer:
    """Records a forest of timed spans (usually a single root)."""

    enabled = True

    def __init__(self):
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **meta) -> _SpanContext:
        span = Span(name, meta or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    @property
    def root(self) -> Optional[Span]:
        """The first root span (the usual single-``vectorize()`` case)."""
        return self.roots[0] if self.roots else None

    def find(self, name: str) -> Optional[Span]:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    # -- export --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [r.to_dict() for r in self.roots]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Tracer":
        tracer = cls()
        tracer.roots = [Span.from_dict(s) for s in data.get("spans", [])]
        return tracer

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_trace_events(self, pid: int = 1,
                        tid: int = 1) -> List[Dict[str, Any]]:
        """Chrome trace-event format: flat list of complete ("X") events
        with microsecond timestamps relative to the earliest span."""
        if not self.roots:
            return []
        origin = min(r.start_wall for r in self.roots)
        events: List[Dict[str, Any]] = []

        def emit(span: Span, offset_us: float) -> None:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": offset_us,
                "dur": span.duration_s * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(span.meta),
            })
            child_offset = offset_us
            for child in span.children:
                emit(child, child_offset)
                child_offset += child.duration_s * 1e6

        for root in self.roots:
            emit(root, (root.start_wall - origin) * 1e6)
        return events

    def phase_times(self) -> Dict[str, float]:
        times: Dict[str, float] = {}
        for root in self.roots:
            for name, value in root.phase_times().items():
                times[name] = times.get(name, 0.0) + value
        return times


class _NullSpanContext:
    """Reusable no-op context manager: the entire cost of disabled
    tracing is one method call returning this preallocated object."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Off-by-default tracer: ``span()`` allocates nothing."""

    enabled = False
    roots: List[Span] = []

    def span(self, name: str, **meta) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    @property
    def root(self) -> Optional[Span]:
        return None

    def find(self, name: str) -> Optional[Span]:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": []}

    def to_trace_events(self, pid: int = 1,
                        tid: int = 1) -> List[Dict[str, Any]]:
        return []

    def phase_times(self) -> Dict[str, float]:
        return {}


#: Shared no-op tracer used by the pipeline when tracing is off.
NULL_TRACER = NullTracer()
