"""Pipeline counters: how much work each vectorization stage did.

A :class:`Counters` object is a flat named-integer registry attached to
:class:`repro.vectorizer.context.VectorizationContext`.  Like tracing,
counting is off by default: the pipeline uses the :data:`NULL_COUNTERS`
singleton whose ``inc`` is a no-op, so hot loops (producer enumeration,
match-table lookups) pay one cheap method call when observability is
disabled.

Counter names are a stable, tested contract — see :data:`COUNTER_NAMES`.
They are namespaced by stage: ``beam.*`` for the Figure 9 search,
``producers.*`` for Algorithm 1, ``matcher.*`` for §4.3 pattern matching,
``seeds.*`` for Figure 8 seed enumeration, ``codegen.*`` for §4.5
lowering, and ``sanitizer.*`` for the repro.analysis suite.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

#: The stable counter-name contract.  Every ``inc()`` in the pipeline
#: uses one of these names; renaming an entry is a breaking change to
#: the ``BENCH_*.json`` trajectory and must be deliberate.
COUNTER_NAMES = frozenset({
    # pass manager (repro.passes)
    "passes.runs",                  # passes executed by PassPipeline.run
    "passes.analysis_reuses",       # required analyses served from cache
    "passes.analysis_invalidations",  # cached analyses dropped by a
                                      # non-preserving pass
    # canonicalization (the worklist instcombine)
    "canon.worklist_pushes",      # instructions enqueued on the worklist
    "canon.rewrites",             # rewrites applied (replace + in-place)
    # beam search (§5.2, Figure 9)
    "beam.iterations",            # outer search iterations run
    "beam.states_expanded",       # parent states passed to expand()
    "beam.children_generated",    # child states produced by expand()
    "beam.candidates_pruned",     # scored children cut by the beam width
    "beam.rollouts",              # greedy SLP rollout completions
    "beam.solved_improvements",   # times the incumbent solution improved
    "beam.tt_hits",               # re-derived states dropped by the
                                  # transposition table
    "beam.incumbent_prunes",      # children/parents/rollouts dropped
                                  # because g already met the incumbent
    "beam.apply_reject_hits",     # pack applications rejected from the
                                  # masked feasibility memo
    "beam.seed_skips",            # seed packs skipped by the liveness
                                  # index before _apply_pack
    "beam.heuristic_skips",       # children scored by g alone: g already
                                  # above the running kth-best f, so the
                                  # heuristic call is provably redundant
    # admissible matching bound (config.bound="matching")
    "beam.bound_evals",           # lower-bound evaluations computed
    "beam.bound_prunes",          # exhaustive branches cut because
                                  # g + lb met the incumbent (or
                                  # exceeded the proved warm bound)
    "beam.bound_heuristic_skips",  # children deferred without a
                                   # heuristic call: g + lb already
                                   # above the running kth-best f
    "beam.bound_rollout_stops",   # rollouts stopped because g + lb met
                                  # the incumbent mid-walk
    "beam.bound_completion_skips",  # deferred completions skipped:
                                    # g + lb met the incumbent
    "beam.bound_dominance_cuts",  # exhaustive states cut by the
                                  # dominance memo (same S/F, V-superset
                                  # of a seen state at <= cost)
    # bitset-native search core (config.bitset)
    "beam.bitset_runs",           # searches run on the bitset engine
    "beam.bitset_operands",       # dense operand ids assigned by the
                                  # bitset registry
    # exhaustive branch-and-bound (config.exact)
    "beam.exact_runs",            # exhaustive passes started
    "beam.exact_nodes",           # states visited by the exhaustive DFS
    "beam.exact_proved",          # passes that ran to exhaustion (the
                                  # returned cost is provably optimal)
    "beam.exact_budget_exhausted",  # passes stopped by exact_node_budget
                                    # (incumbent returned, no proof)
    "beam.exact_improvements",    # times exhaustion beat the beam's cost
    # warm-started incumbents (config.warm_start)
    "beam.warmstart_hits",        # warm cost cache lookups that hit
    "beam.warmstart_misses",      # ... that missed
    "beam.warmstart_stops",       # beam loops stopped early at the
                                  # warm-cached final cost
    "beam.warmstart_prunes",      # exhaustive branches cut by the warm
                                  # bound (strictly above it)
    # search-layer memoization (SLP estimator + heuristic)
    "slp.estimate_hits",          # memoized completion-cost lookups
    # producer enumeration (Algorithm 1)
    "producers.cache_hits",       # memoized operand lookups served
    "producers.cache_misses",     # operand enumerations actually run
    "producers.packs_enumerated",  # producer packs built in total
    # pattern matching (§4.3)
    "matcher.table_lookups",      # match-table cell lookups
    "matcher.roots_tried",        # (value, operation) match attempts
    "matcher.matches_found",      # successful matches recorded
    # seed enumeration (Figure 8)
    "seeds.store_packs",          # contiguous store seed packs
    "seeds.affinity_packs",       # affinity seed packs (§5.1 top-k)
    # code generation (§4.5)
    "codegen.packs_lowered",      # packs emitted as vector nodes
    "codegen.scalars_emitted",    # surviving scalar instructions
    "codegen.gathers_emitted",    # operand vectors nothing produced
    "codegen.extracts_emitted",   # packed values also needed as scalars
    # sanitizers (repro.analysis)
    "sanitizer.diagnostics",      # total diagnostics reported
    "sanitizer.errors",           # error-severity diagnostics
    "sanitizer.warnings",         # warning-severity diagnostics
    # compile server (repro.serve)
    "serve.requests",             # compile requests accepted for parsing
    "serve.cache_hits",           # responses served from the result cache
    "serve.cache_memory_hits",    # ... from the in-memory LRU tier
    "serve.cache_disk_hits",      # ... from the on-disk store
    "serve.cache_misses",         # requests that had to compile
    "serve.cache_evictions",      # LRU entries dropped by capacity
    "serve.cache_disk_evictions",  # disk entries dropped by the size
                                   # cap (REPRO_SERVE_CACHE_LIMIT)
    "serve.cache_corrupt_evictions",  # disk entries failing their body
                                      # hash, deleted and recompiled
    "serve.compiles",             # compiles completed by the worker pool
    "serve.batches",              # worker batches dispatched
    "serve.batched_requests",     # requests that rode a multi-item batch
    "serve.rejected",             # requests rejected by backpressure (429)
    "serve.timeouts",             # requests cancelled at their deadline
    "serve.worker_crashes",       # workers observed dead mid-request
    "serve.worker_respawns",      # replacement workers started
    "serve.errors",               # structured error responses (4xx/5xx)
    # translation validation (repro.analysis.transval)
    "transval.runs",              # validation runs started
    "transval.goals",             # equivalence goals discharged
    "transval.proved.structural",  # closed by simplify + canonical form
    "transval.proved.knownbits",  # closed by known-bits clamp folding
    "transval.proved.enum",       # closed by exhaustive enumeration
    "transval.enumerated",        # goals that entered the enumeration tier
    "transval.sampled",           # goals only validated by sampling
    "transval.failures",          # goals disproved (miscompile found)
})


class Counters:
    """A flat, mergeable registry of named integer counters."""

    enabled = True

    __slots__ = ("_data",)

    def __init__(self, initial: Mapping[str, int] = ()):
        self._data: Dict[str, int] = dict(initial)

    def inc(self, name: str, amount: int = 1) -> None:
        self._data[name] = self._data.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._data.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self._data.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)

    def merge(self, other: "Counters") -> "Counters":
        """Add another registry's counts into this one (in place)."""
        for name, value in other._data.items():
            self._data[name] = self._data.get(name, 0) + value
        return self

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self._data.items()))

    def clear(self) -> None:
        self._data.clear()

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"


class NullCounters(Counters):
    """Off-by-default counters: ``inc`` does nothing, reads return 0."""

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def merge(self, other: "Counters") -> "Counters":
        return self


#: Shared no-op registry used by the pipeline when counting is off.
NULL_COUNTERS = NullCounters()
