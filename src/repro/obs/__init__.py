"""Observability for the vectorization pipeline (tracing, counters,
benchmarking).

Zero-dependency and off by default: the pipeline threads a
:class:`Tracer` and a :class:`Counters` registry through every stage
(canonicalize → match table → seeds → beam search → codegen → costing),
but unless a caller passes real instances to ``vectorize()``, the
:data:`NULL_TRACER` / :data:`NULL_COUNTERS` singletons are used and the
instrumentation reduces to one no-op call per site.

Quick start::

    from repro.obs import Counters, Tracer

    tracer, counters = Tracer(), Counters()
    result = vectorize(fn, target="avx2", tracer=tracer,
                       counters=counters)
    print(tracer.phase_times())        # {"select_packs": 0.012, ...}
    print(counters.as_dict())          # {"beam.iterations": 9, ...}
    json.dump(tracer.to_trace_events(), open("trace.json", "w"))

The ``repro bench`` CLI subcommand (see :mod:`repro.obs.bench`) runs the
bundled kernel × target matrix with observability on and writes the
``BENCH_vegen.json`` perf trajectory.
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    DEFAULT_BEAM_WIDTH,
    DEFAULT_BENCH_PATH,
    DEFAULT_TARGETS,
    bench_one,
    compare_bench,
    load_bench,
    render_bench_summary,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.obs.counters import (
    COUNTER_NAMES,
    Counters,
    NULL_COUNTERS,
    NullCounters,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SPAN_NAMES,
    Span,
    Tracer,
)

__all__ = [
    "BENCH_SCHEMA",
    "COUNTER_NAMES",
    "Counters",
    "DEFAULT_BEAM_WIDTH",
    "DEFAULT_BENCH_PATH",
    "DEFAULT_TARGETS",
    "NULL_COUNTERS",
    "NULL_TRACER",
    "NullCounters",
    "NullTracer",
    "SPAN_NAMES",
    "Span",
    "Tracer",
    "bench_one",
    "compare_bench",
    "load_bench",
    "render_bench_summary",
    "run_bench",
    "validate_bench",
    "write_bench",
]
