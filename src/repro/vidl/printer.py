"""Rendering of VIDL descriptions in the paper's notation (Figure 4b)."""

from __future__ import annotations

from typing import List

from repro.vidl import ast as V


def format_op_expr(expr: "V.OpExpr") -> str:
    if isinstance(expr, V.OpParam):
        return f"x{expr.index + 1}"
    if isinstance(expr, V.OpConst):
        return str(expr.value)
    assert isinstance(expr, V.OpNode)
    if expr.opcode in ("icmp", "fcmp"):
        args = ", ".join(format_op_expr(o) for o in expr.operands)
        return f"{expr.attr}({args})"
    if expr.opcode in ("sext", "zext", "trunc", "fpext", "fptrunc",
                       "sitofp", "fptosi"):
        inner = format_op_expr(expr.operands[0])
        return f"{expr.opcode}{expr.type.width}({inner})"
    args = ", ".join(format_op_expr(o) for o in expr.operands)
    return f"{expr.opcode}({args})"


def format_operation(operation: "V.Operation") -> str:
    params = ", ".join(
        f"x{i + 1}:{ty}" for i, ty in enumerate(operation.params)
    )
    return f"({params}) -> {format_op_expr(operation.expr)}"


def format_inst_desc(desc: "V.InstDesc") -> str:
    inputs = ", ".join(
        f"x{i}:{vin.lanes}x{vin.elem_type}"
        for i, vin in enumerate(desc.inputs)
    )
    lanes: List[str] = []
    ops = {op.key(): f"op{i}" for i, op in
           enumerate(desc.distinct_operations())}
    for lane_op in desc.lane_ops:
        name = ops[lane_op.operation.key()]
        binds = ", ".join(repr(b) for b in lane_op.bindings)
        lanes.append(f"{name}({binds})")
    header = f"{desc.name} = ({inputs}) -> [{', '.join(lanes)}]"
    defs = [
        f"  {ops[op.key()]} = {format_operation(op)}"
        for op in desc.distinct_operations()
    ]
    return "\n".join([header] + defs)
