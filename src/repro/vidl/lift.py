"""Lifting simplified bitvector formulas to VIDL (§6.1).

After symbolic evaluation and simplification, an instruction's ``dst``
formula is sliced into output lanes; each lane expression is translated to
a VIDL operation whose leaves are *element-aligned* slices of the input
registers.  Element alignment is exactly the VIDL restriction that input
lanes are selected by constant indices — if a lane expression reads a
misaligned or partial slice of an input, the instruction cannot be
described in VIDL and we reject it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bitvector import (
    BVBinary,
    BVCast,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVOps,
    BVUnary,
    BVVar,
    bv_extract,
    simplify,
)
from repro.ir.types import FloatType, I1, Type, int_type
from repro.pseudocode.ast import ElemKind, Spec
from repro.pseudocode.symbolic import SymbolicResult, evaluate_spec
from repro.utils.fp import float_from_bits
from repro.vidl.ast import (
    InstDesc,
    LaneOp,
    LaneRef,
    OpConst,
    OpExpr,
    OpNode,
    OpParam,
    Operation,
    VectorInput,
)


class LiftError(ValueError):
    """Raised when a formula cannot be expressed in VIDL."""


def elem_type_of(kind: str, width: int) -> Type:
    if kind == ElemKind.FLOAT:
        return FloatType(width)
    return int_type(width)


def lift_spec(spec: Spec) -> InstDesc:
    """Full offline pipeline for one instruction: symbolic evaluation,
    simplification, lane slicing, and lifting."""
    return lift_symbolic(evaluate_spec(spec))


def lift_symbolic(result: SymbolicResult) -> InstDesc:
    spec = result.spec
    if result.references_uninitialized_output():
        raise LiftError(
            f"{spec.name}: semantics do not assign every output bit"
        )
    out = spec.output
    out_ty = elem_type_of(out.kind, out.elem_width)
    inputs = [
        VectorInput(p.lanes, elem_type_of(p.kind, p.elem_width))
        for p in spec.params
    ]
    input_index = {p.name: i for i, p in enumerate(spec.params)}
    lane_ops: List[LaneOp] = []
    for lane in range(out.lanes):
        hi = (lane + 1) * out.elem_width - 1
        lo = lane * out.elem_width
        lane_expr = simplify(bv_extract(hi, lo, result.dst))
        lifter = _LaneLifter(spec, input_index)
        expr = lifter.lift(lane_expr, out_ty)
        operation = Operation(tuple(lifter.param_types), expr)
        lane_ops.append(LaneOp(operation, tuple(lifter.bindings)))
    return InstDesc(spec.name, inputs, lane_ops, out_ty)


class _LaneLifter:
    """Lifts one output-lane formula; accumulates parameters in
    first-appearance order, deduplicating repeated input lanes."""

    def __init__(self, spec: Spec, input_index: Dict[str, int]):
        self.spec = spec
        self.input_index = input_index
        self.param_types: List[Type] = []
        self.bindings: List[LaneRef] = []
        self._param_of: Dict[Tuple[int, int], int] = {}

    def lift(self, expr: BVExpr, expected: Type) -> OpExpr:
        if isinstance(expr, BVConst):
            return self._lift_const(expr, expected)
        if isinstance(expr, BVVar):
            return self._lift_input_slice(expr, expr.width - 1, 0, expected)
        if isinstance(expr, BVExtract):
            return self._lift_extract(expr, expected)
        if isinstance(expr, BVIte):
            cond = self.lift(expr.cond, I1)
            on_true = self.lift(expr.on_true, expected)
            on_false = self.lift(expr.on_false, expected)
            return OpNode("select", [cond, on_true, on_false], expected)
        if isinstance(expr, BVUnary):
            return self._lift_unary(expr, expected)
        if isinstance(expr, BVCast):
            return self._lift_cast(expr, expected)
        if isinstance(expr, BVBinary):
            return self._lift_binary(expr, expected)
        raise LiftError(f"cannot lift {type(expr).__name__}")

    # -- leaves ------------------------------------------------------------

    def _lift_const(self, expr: BVConst, expected: Type) -> OpConst:
        if expected.width != expr.width:
            raise LiftError(
                f"constant width {expr.width} != expected {expected.width}"
            )
        if expected.is_float:
            return OpConst(float_from_bits(expr.value, expr.width), expected)
        return OpConst(expr.value, expected)

    def _lift_input_slice(self, var: BVVar, hi: int, lo: int,
                          expected: Type) -> OpExpr:
        if var.name not in self.input_index:
            raise LiftError(f"free variable {var.name!r} is not an input")
        index = self.input_index[var.name]
        param = self.spec.params[index]
        ew = param.elem_width
        width = hi - lo + 1
        if width == ew and lo % ew == 0:
            return self._param(index, param, lo // ew, expected)
        # A slice strictly inside one element: expressible as shift +
        # truncate of that element (the LLVM IR idiom the pattern must
        # match, e.g. ``trunc i32 %x to i16``).
        if hi // ew == lo // ew and param.kind != ElemKind.FLOAT:
            if not expected.is_integer or expected.width != width:
                raise LiftError(
                    f"{self.spec.name}: sub-element slice used where "
                    f"{expected} expected"
                )
            elem_ty = elem_type_of(param.kind, ew)
            node: OpExpr = self._param(index, param, lo // ew, elem_ty)
            shift = lo % ew
            if shift:
                node = OpNode("lshr", [node, OpConst(shift, elem_ty)],
                              elem_ty)
            return OpNode("trunc", [node], int_type(width))
        raise LiftError(
            f"{self.spec.name}: slice [{hi}:{lo}] of input {var.name!r} "
            f"is not element aligned (element width {ew})"
        )

    def _param(self, index: int, param, lane: int,
               expected: Type) -> OpParam:
        elem_ty = elem_type_of(param.kind, param.elem_width)
        if elem_ty.is_float != expected.is_float or \
                elem_ty.width != expected.width:
            raise LiftError(
                f"{self.spec.name}: input lane of type {elem_ty} used "
                f"where {expected} expected"
            )
        key = (index, lane)
        if key not in self._param_of:
            self._param_of[key] = len(self.param_types)
            self.param_types.append(elem_ty)
            self.bindings.append(LaneRef(index, lane))
        return OpParam(self._param_of[key], elem_ty)

    # -- interior nodes ---------------------------------------------------------

    def _lift_extract(self, expr: BVExtract, expected: Type) -> OpExpr:
        if isinstance(expr.operand, BVVar):
            return self._lift_input_slice(expr.operand, expr.hi, expr.lo,
                                          expected)
        if expr.lo == 0:
            if not expected.is_integer:
                raise LiftError("truncation must produce an integer")
            inner_ty = int_type(expr.operand.width)
            inner = self.lift(expr.operand, inner_ty)
            return OpNode("trunc", [inner], int_type(expr.width))
        raise LiftError(
            f"unsupported extract [{expr.hi}:{expr.lo}] of a compound "
            "expression"
        )

    def _lift_unary(self, expr: BVUnary, expected: Type) -> OpExpr:
        if expr.op == "fneg":
            if not expected.is_float:
                raise LiftError("fneg in integer context")
            operand = self.lift(expr.operand, expected)
            return OpNode("fneg", [operand], expected)
        if not expected.is_integer:
            raise LiftError(f"{expr.op} in float context")
        operand = self.lift(expr.operand, expected)
        if expr.op == "neg":
            # LLVM canonical form: 0 - x.
            return OpNode("sub", [OpConst(0, expected), operand], expected)
        if expr.op == "not":
            ones = (1 << expected.width) - 1
            return OpNode("xor", [operand, OpConst(ones, expected)],
                          expected)
        raise LiftError(f"unknown unary {expr.op}")

    def _lift_cast(self, expr: BVCast, expected: Type) -> OpExpr:
        inner = expr.operand
        if expr.op in ("sext", "zext"):
            if not expected.is_integer:
                raise LiftError(f"{expr.op} in float context")
            operand = self.lift(inner, int_type(inner.width))
            return OpNode(expr.op, [operand], int_type(expr.width))
        if expr.op in ("fpext", "fptrunc"):
            operand = self.lift(inner, FloatType(inner.width))
            return OpNode(expr.op, [operand], FloatType(expr.width))
        if expr.op == "sitofp":
            operand = self.lift(inner, int_type(inner.width))
            return OpNode(expr.op, [operand], FloatType(expr.width))
        if expr.op == "fptosi":
            operand = self.lift(inner, FloatType(inner.width))
            return OpNode(expr.op, [operand], int_type(expr.width))
        raise LiftError(f"unknown cast {expr.op}")

    def _lift_binary(self, expr: BVBinary, expected: Type) -> OpExpr:
        op = expr.op
        if op in BVOps.INT_BINARY:
            if not expected.is_integer or expected.width != expr.width:
                raise LiftError(
                    f"{op} produces i{expr.width}, expected {expected}"
                )
            ty = int_type(expr.width)
            lhs = self.lift(expr.lhs, ty)
            rhs = self.lift(expr.rhs, ty)
            return OpNode(op, [lhs, rhs], ty)
        if op in BVOps.FLOAT_BINARY:
            if not expected.is_float or expected.width != expr.width:
                raise LiftError(
                    f"{op} produces f{expr.width}, expected {expected}"
                )
            ty = FloatType(expr.width)
            lhs = self.lift(expr.lhs, ty)
            rhs = self.lift(expr.rhs, ty)
            return OpNode(op, [lhs, rhs], ty)
        if op in BVOps.ICMP:
            if expected != I1:
                raise LiftError("comparison used as a non-i1 value")
            ty = int_type(expr.lhs.width)
            lhs = self.lift(expr.lhs, ty)
            rhs = self.lift(expr.rhs, ty)
            return OpNode("icmp", [lhs, rhs], I1, attr=op)
        if op in BVOps.FCMP:
            if expected != I1:
                raise LiftError("comparison used as a non-i1 value")
            ty = FloatType(expr.lhs.width)
            lhs = self.lift(expr.lhs, ty)
            rhs = self.lift(expr.rhs, ty)
            return OpNode("fcmp", [lhs, rhs], I1, attr=op)
        raise LiftError(f"unknown binary op {op}")
