"""Vector Instruction Description Language (§4.1) and its offline lifter
from pseudocode semantics (§6.1)."""

from repro.vidl.ast import (
    InstDesc,
    LaneOp,
    LaneRef,
    OpConst,
    OpExpr,
    OpNode,
    OpParam,
    Operation,
    VectorInput,
)
from repro.vidl.interp import (
    DONT_CARE,
    VIDLExecError,
    bits_from_lanes,
    execute_inst,
    execute_operation,
    lanes_from_bits,
)
from repro.vidl.lift import LiftError, elem_type_of, lift_spec, lift_symbolic
from repro.vidl.printer import (
    format_inst_desc,
    format_op_expr,
    format_operation,
)

__all__ = [
    "InstDesc",
    "LaneOp",
    "LaneRef",
    "OpConst",
    "OpExpr",
    "OpNode",
    "OpParam",
    "Operation",
    "VectorInput",
    "DONT_CARE",
    "VIDLExecError",
    "bits_from_lanes",
    "execute_inst",
    "execute_operation",
    "lanes_from_bits",
    "LiftError",
    "elem_type_of",
    "lift_spec",
    "lift_symbolic",
    "format_inst_desc",
    "format_op_expr",
    "format_operation",
]
