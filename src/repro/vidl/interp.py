"""Interpreter for VIDL instruction descriptions.

Executes an :class:`InstDesc` on concrete lane vectors.  This is the
semantic definition the machine executor (``repro.machine.exec``) uses for
compute instructions, so the entire vectorizer correctness story reduces
to: scalar interpreter == VIDL interpreter composed over packs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bitvector.eval import evaluate_binary as evaluate_bv_binary
from repro.ir.interp import (
    evaluate_cast,
    evaluate_fcmp,
    evaluate_float_binop,
    evaluate_icmp,
)
from repro.ir.types import Type
from repro.utils.fp import float_from_bits, float_to_bits, round_to_width
from repro.utils.intmath import mask
from repro.vidl.ast import InstDesc, OpConst, OpExpr, OpNode, OpParam

#: Sentinel for don't-care operand lanes (Figure 6 / §4.4).
DONT_CARE = object()

_CAST_OPS = frozenset(
    {"sext", "zext", "trunc", "fpext", "fptrunc", "sitofp", "fptosi"}
)


class VIDLExecError(RuntimeError):
    """Raised when an instruction description cannot be executed."""


def execute_operation(operation, args: Sequence[object]):
    """Evaluate one scalar operation on concrete argument values."""
    if len(args) != len(operation.params):
        raise VIDLExecError(
            f"operation takes {len(operation.params)} args, got {len(args)}"
        )
    return _eval(operation.expr, list(args))


def execute_inst(desc: InstDesc, inputs: Sequence[Sequence[object]]
                 ) -> List[object]:
    """Execute an instruction on per-input lane vectors.

    Don't-care input lanes may be ``None`` or :data:`DONT_CARE`.  Integer
    lanes are unsigned ints; float lanes are Python floats.
    """
    if len(inputs) != desc.num_inputs:
        raise VIDLExecError(
            f"{desc.name}: expected {desc.num_inputs} inputs, "
            f"got {len(inputs)}"
        )
    for i, (vin, data) in enumerate(zip(desc.inputs, inputs)):
        if len(data) != vin.lanes:
            raise VIDLExecError(
                f"{desc.name}: input {i} has {len(data)} lanes, "
                f"expected {vin.lanes}"
            )
    output: List[object] = []
    for lane_op in desc.lane_ops:
        args = []
        for ref in lane_op.bindings:
            value = inputs[ref.input_index][ref.lane_index]
            if value is None or value is DONT_CARE:
                raise VIDLExecError(
                    f"{desc.name}: operation consumes don't-care lane "
                    f"{ref!r}"
                )
            args.append(value)
        output.append(execute_operation(lane_op.operation, args))
    return output


def _eval(expr: OpExpr, args: List[object]):
    if isinstance(expr, OpParam):
        value = args[expr.index]
        if expr.type.is_integer:
            return mask(int(value), expr.type.width)
        return value
    if isinstance(expr, OpConst):
        return expr.value
    assert isinstance(expr, OpNode)
    op = expr.opcode
    operands = [_eval(o, args) for o in expr.operands]
    if op == "select":
        return operands[1] if operands[0] else operands[2]
    if op == "icmp":
        return evaluate_icmp(expr.attr, operands[0], operands[1],
                             expr.operands[0].type.width)
    if op == "fcmp":
        return evaluate_fcmp(expr.attr, operands[0], operands[1])
    if op == "fneg":
        return round_to_width(-operands[0], expr.type.width)
    if op in _CAST_OPS:
        return evaluate_cast(op, operands[0], expr.operands[0].type,
                             expr.type)
    if expr.type.is_integer:
        # SMT-LIB bitvector semantics (shifts clamp rather than trap),
        # matching the formulas the description was lifted from.
        return evaluate_bv_binary(op, operands[0], operands[1],
                                  expr.type.width)
    return evaluate_float_binop(op, operands[0], operands[1],
                                expr.type.width)


# -- register payload <-> lane vector helpers ----------------------------------


def lanes_from_bits(bits: int, lanes: int, elem_type: Type) -> List[object]:
    """Split a register payload into lane values (LSB lane first)."""
    width = elem_type.width
    out: List[object] = []
    for i in range(lanes):
        lane_bits = (bits >> (i * width)) & ((1 << width) - 1)
        if elem_type.is_float:
            out.append(float_from_bits(lane_bits, width))
        else:
            out.append(lane_bits)
    return out


def bits_from_lanes(values: Sequence[object], elem_type: Type) -> int:
    """Pack lane values into an unsigned register payload."""
    width = elem_type.width
    bits = 0
    for i, value in enumerate(values):
        if elem_type.is_float:
            lane_bits = float_to_bits(float(value), width)
        else:
            lane_bits = mask(int(value), width)
        bits |= lane_bits << (i * width)
    return bits
