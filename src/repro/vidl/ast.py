"""The Vector Instruction Description Language (VIDL), per Figure 5.

A VIDL instruction description models a target vector instruction as::

    inst ::= (x1 : vl1 x sz1, ..., xn : vln x szn) -> [res1, ..., resm]
    res  ::= opn(lane1, ..., lanek)
    opn  ::= (x1 : sz1, ..., xk : szk) -> expr

i.e. a list of scalar *operations* (one per output lane), each with a
*lane binding* saying which input lanes feed its parameters.  VIDL only
allows selecting input lanes with constant indices, which is what makes
``operand_i(pack)`` statically computable (§4.4).

Operation expressions reuse the scalar IR's type objects and opcode names
so that pattern generation (``repro.patterns``) is a direct structural
walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.types import Type


# -- operation expressions -----------------------------------------------------


class OpExpr:
    """Base class for operation expression nodes.

    Nodes are immutable; :meth:`key` returns a hashable structural key used
    for operation identity (the match table is keyed on it, §4.3).
    """

    __slots__ = ("type",)

    def __init__(self, ty: Type):
        self.type = ty

    def key(self) -> Tuple:
        raise NotImplementedError

    def children(self) -> Tuple["OpExpr", ...]:
        return ()

    def __repr__(self) -> str:
        from repro.vidl.printer import format_op_expr

        return format_op_expr(self)


class OpParam(OpExpr):
    """A leaf parameter of the operation (``x1 : 16`` in Figure 4b)."""

    __slots__ = ("index",)

    def __init__(self, index: int, ty: Type):
        super().__init__(ty)
        self.index = index

    def key(self):
        return ("param", self.index, self.type)


class OpConst(OpExpr):
    """An embedded constant (e.g. saturation bounds)."""

    __slots__ = ("value",)

    def __init__(self, value, ty: Type):
        super().__init__(ty)
        self.value = value

    def key(self):
        return ("const", self.value, self.type)


class OpNode(OpExpr):
    """An operator application; ``opcode`` uses scalar-IR opcode names.

    ``attr`` carries the comparison predicate for icmp/fcmp nodes and is
    None otherwise.
    """

    __slots__ = ("opcode", "operands", "attr")

    def __init__(self, opcode: str, operands: Sequence[OpExpr], ty: Type,
                 attr: Optional[str] = None):
        super().__init__(ty)
        self.opcode = opcode
        self.operands = tuple(operands)
        self.attr = attr

    def key(self):
        return (
            ("node", self.opcode, self.attr, self.type)
            + tuple(o.key() for o in self.operands)
        )

    def children(self):
        return self.operands


@dataclass(frozen=True)
class Operation:
    """A scalar operation: parameter types plus a single expression."""

    params: Tuple[Type, ...]
    expr: OpExpr

    def key(self) -> Tuple:
        return (self.params, self.expr.key())

    @property
    def result_type(self) -> Type:
        return self.expr.type

    def __repr__(self) -> str:
        from repro.vidl.printer import format_operation

        return format_operation(self)


# -- lane bindings ---------------------------------------------------------------


@dataclass(frozen=True)
class LaneRef:
    """A constant reference to one lane of one input register."""

    input_index: int
    lane_index: int

    def __repr__(self) -> str:
        return f"x{self.input_index}[{self.lane_index}]"


@dataclass(frozen=True)
class LaneOp:
    """One output lane: an operation plus the input lanes its parameters
    bind to (``bindings[i]`` feeds parameter ``i``)."""

    operation: Operation
    bindings: Tuple[LaneRef, ...]

    def __post_init__(self):
        if len(self.bindings) != len(self.operation.params):
            raise ValueError(
                f"lane op binds {len(self.bindings)} lanes but operation "
                f"has {len(self.operation.params)} parameters"
            )


@dataclass(frozen=True)
class VectorInput:
    """Shape of one input register: ``vl x sz``."""

    lanes: int
    elem_type: Type

    def __repr__(self) -> str:
        return f"{self.lanes} x {self.elem_type}"


class InstDesc:
    """A complete VIDL instruction description."""

    def __init__(self, name: str, inputs: Sequence[VectorInput],
                 lane_ops: Sequence[LaneOp], out_elem_type: Type):
        self.name = name
        self.inputs = tuple(inputs)
        self.lane_ops = tuple(lane_ops)
        self.out_elem_type = out_elem_type
        self._consumer_table: Optional[Dict] = None
        self._pack_plan: Optional[Tuple] = None
        self._validate()

    @property
    def num_lanes(self) -> int:
        return len(self.lane_ops)

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def _validate(self) -> None:
        for lane_idx, lane_op in enumerate(self.lane_ops):
            if lane_op.operation.result_type != self.out_elem_type:
                raise ValueError(
                    f"{self.name}: lane {lane_idx} produces "
                    f"{lane_op.operation.result_type}, expected "
                    f"{self.out_elem_type}"
                )
            for param_idx, ref in enumerate(lane_op.bindings):
                if not 0 <= ref.input_index < len(self.inputs):
                    raise ValueError(
                        f"{self.name}: lane {lane_idx} binds to missing "
                        f"input {ref.input_index}"
                    )
                vin = self.inputs[ref.input_index]
                if not 0 <= ref.lane_index < vin.lanes:
                    raise ValueError(
                        f"{self.name}: lane {lane_idx} binds to lane "
                        f"{ref.lane_index} of input {ref.input_index} "
                        f"which has only {vin.lanes} lanes"
                    )
                param_ty = lane_op.operation.params[param_idx]
                if param_ty != vin.elem_type:
                    raise ValueError(
                        f"{self.name}: lane {lane_idx} param {param_idx} "
                        f"has type {param_ty} but binds a lane of type "
                        f"{vin.elem_type}"
                    )

    def distinct_operations(self) -> List[Operation]:
        """The distinct operations used across lanes (first-seen order)."""
        seen: Dict[Tuple, Operation] = {}
        for lane_op in self.lane_ops:
            key = lane_op.operation.key()
            if key not in seen:
                seen[key] = lane_op.operation
        return list(seen.values())

    @property
    def is_simd(self) -> bool:
        """True when the instruction is plain SIMD: isomorphic lanes and
        purely elementwise lane bindings (the two SLP assumptions, §3)."""
        ops = {lane.operation.key() for lane in self.lane_ops}
        if len(ops) > 1:
            return False
        for lane_idx, lane_op in enumerate(self.lane_ops):
            for ref in lane_op.bindings:
                if ref.lane_index != lane_idx:
                    return False
        return True

    def consumed_lanes(self, input_index: int) -> List[bool]:
        """Which lanes of the given input are used by any operation.
        Unused lanes are don't-care lanes (vpmuldq, Figure 6)."""
        used = [False] * self.inputs[input_index].lanes
        for lane_op in self.lane_ops:
            for ref in lane_op.bindings:
                if ref.input_index == input_index:
                    used[ref.lane_index] = True
        return used

    def lane_consumers(self, input_index: int,
                       lane_index: int) -> List[Tuple[int, int]]:
        """All (output_lane, param_position) pairs consuming an input lane.

        This is the statically-computed inverse of the lane bindings: the
        generated ``operand_i(.)`` functions (Figure 4c) read off this map.
        The full inverse is built lazily on first use — pack construction
        asks for every input lane of an instruction, so a per-query scan
        over all bindings is quadratic in the lane count.
        """
        table = self._consumer_table
        if table is None:
            table = {}
            for out_lane, lane_op in enumerate(self.lane_ops):
                for param_pos, ref in enumerate(lane_op.bindings):
                    table.setdefault(
                        (ref.input_index, ref.lane_index), []
                    ).append((out_lane, param_pos))
            self._consumer_table = table
        return table.get((input_index, lane_index), [])

    def pack_plan(self) -> Tuple:
        """The full lane-consumer inverse as a flat per-input plan.

        One entry per input: ``('simple', ((out_lane, param_pos) |
        None, ...))`` when every lane has at most one consumer (the
        overwhelmingly common elementwise case — no consistency check is
        needed, so pack construction reads the bound value directly), or
        ``('general', (consumer_list, ...))`` with the per-lane consumer
        lists otherwise.  Built once per instruction description and
        cached: pack construction is the hottest allocation site of the
        whole vectorizer, and the per-lane ``lane_consumers`` calls it
        replaces were ~40% of ComputePack construction time."""
        plan = self._pack_plan
        if plan is None:
            entries = []
            for input_index, vin in enumerate(self.inputs):
                consumers = [
                    self.lane_consumers(input_index, lane_index)
                    for lane_index in range(vin.lanes)
                ]
                if all(len(c) <= 1 for c in consumers):
                    entries.append((
                        "simple",
                        tuple(c[0] if c else None for c in consumers),
                    ))
                else:
                    entries.append(("general", tuple(consumers)))
            plan = tuple(entries)
            self._pack_plan = plan
        return plan

    def __repr__(self) -> str:
        from repro.vidl.printer import format_inst_desc

        return format_inst_desc(self)
