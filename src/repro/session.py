"""Reusable vectorization sessions: the compile-time phase as a service.

A :class:`VectorizationSession` amortizes everything that does not
depend on the particular function being vectorized — target
resolution (the offline artifact or pseudocode build), the pass
pipeline, the configuration — across many ``vectorize()`` calls, and
adds a :meth:`VectorizationSession.vectorize_many` batch API.  The
CLI, the baseline vectorizer, and ``repro bench`` all route through
sessions; the module-level :func:`repro.vectorizer.vectorize` is a
one-shot session.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.machine.costs import CostModel
from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.trace import NULL_TRACER
from repro.passes import PassPipeline, PipelineState, default_passes
from repro.target.isa import TargetDesc
from repro.target.registry import get_target
from repro.vectorizer.context import VectorizerConfig
from repro.vectorizer.pipeline import VectorizationResult, clone_function


class VectorizationSession:
    """Shared state for vectorizing many functions against one target.

    Parameters mirror :func:`repro.vectorizer.vectorize`; a session
    fixes them once and reuses the resolved target description and the
    built pass pipeline for every call.  Sessions are cheap to create
    (target construction is registry-cached and artifact-backed) but
    reusing one makes the sharing explicit and keeps batch call sites
    (CLI files with many functions, the bench matrix) uniform.
    """

    def __init__(
        self,
        target: Union[str, TargetDesc] = "avx2",
        beam_width: int = 64,
        canonicalize_patterns: bool = True,
        canonicalize_input: bool = True,
        reassociate: bool = False,
        cost_model: Optional[CostModel] = None,
        config: Optional[VectorizerConfig] = None,
        sanitize: bool = False,
        verify: bool = False,
        pipeline: Optional[PassPipeline] = None,
    ):
        self._target_spec = target
        self._target_desc: Optional[TargetDesc] = (
            target if isinstance(target, TargetDesc) else None
        )
        self._trace_target_build = not isinstance(target, TargetDesc)
        self.beam_width = beam_width
        self.canonicalize_patterns = canonicalize_patterns
        self.canonicalize_input = canonicalize_input
        self.reassociate = reassociate
        self.cost_model = cost_model
        self.config = config
        self.sanitize = sanitize
        self.verify = verify
        self.pipeline = pipeline if pipeline is not None else PassPipeline(
            default_passes(
                canonicalize_input=canonicalize_input,
                reassociate=reassociate,
                sanitize=sanitize,
                verify=verify,
            )
        )

    @property
    def target(self) -> TargetDesc:
        """The resolved target description (built/loaded on first use)."""
        if self._target_desc is None:
            self._target_desc = get_target(
                self._target_spec,
                canonicalize_patterns=self.canonicalize_patterns,
            )
        return self._target_desc

    def _resolve_config(self) -> VectorizerConfig:
        if self.config is None:
            return VectorizerConfig(beam_width=self.beam_width)
        # Historical contract: an explicit config is adopted but its
        # beam width follows the call's beam_width knob.
        self.config.beam_width = self.beam_width
        return self.config

    def vectorize(self, function, tracer=None,
                  counters: Optional[Counters] = None
                  ) -> VectorizationResult:
        """Vectorize one straight-line function.

        The input function is never mutated; a canonicalized working
        copy is returned in the result.  Behaviour, span structure, and
        output are identical to the historical monolithic
        ``vectorize()`` (differential-tested).
        """
        obs_on = tracer is not None or counters is not None
        if tracer is None:
            tracer = NULL_TRACER
        if counters is None:
            counters = NULL_COUNTERS
        with tracer.span("vectorize", function=function.name,
                         beam_width=self.beam_width) as root_span:
            if self._trace_target_build:
                # First use of a target builds its whole description
                # (the offline phase: artifact load, or pseudocode ->
                # VIDL -> patterns); later uses hit the registry cache.
                # Traced so bench wall times are attributable.
                with tracer.span("target_build"):
                    target_desc = self.target
            else:
                target_desc = self.target
            if root_span is not None:
                root_span.meta["target"] = target_desc.name
            work = clone_function(function)
            state = PipelineState(
                work, target_desc,
                cost_model=self.cost_model,
                config=self._resolve_config(),
                tracer=tracer, counters=counters,
            )
            self.pipeline.run(state)
            if state.program is None:
                # Custom pipelines may omit codegen; complete the run so
                # every result carries a costed program.
                from repro.passes import CodegenPass

                CodegenPass().run(state)
            result = VectorizationResult(
                function=work,
                program=state.program,
                packs=state.packs,
                scalar_cost=state.scalar_cost,
                cost=state.cost,
                estimated_cost=state.estimated_cost,
                diagnostics=state.diagnostics,
                verification=state.verification,
                target=target_desc,
            )
            if obs_on:
                result.trace = root_span  # None when only counters on
                result.counters = counters if counters.enabled else None
        return result

    def vectorize_many(self, functions: Iterable, tracer=None,
                       counters: Optional[Counters] = None,
                       counters_list: Optional[Sequence[Counters]] = None,
                       ) -> List[VectorizationResult]:
        """Vectorize a batch of functions, sharing the session's target
        and pipeline; results are returned in input order.

        ``counters_list`` gives each function its own
        :class:`~repro.obs.counters.Counters` registry (one per input,
        same order) instead of the shared ``counters`` — the compile
        server batches requests through here and must report per-request
        counters that are identical whether or not a request rode a
        batch.
        """
        if counters_list is not None:
            functions = list(functions)
            if len(counters_list) != len(functions):
                raise ValueError(
                    f"counters_list has {len(counters_list)} entries "
                    f"for {len(functions)} functions"
                )
            return [self.vectorize(fn, tracer=tracer, counters=ctrs)
                    for fn, ctrs in zip(functions, counters_list)]
        return [self.vectorize(fn, tracer=tracer, counters=counters)
                for fn in functions]

    def __repr__(self) -> str:
        target = (self._target_desc.name if self._target_desc is not None
                  else self._target_spec)
        return (f"<VectorizationSession target={target} "
                f"beam_width={self.beam_width} "
                f"passes=[{', '.join(self.pipeline.names)}]>")


def vectorize_many(
    functions: Sequence,
    target: Union[str, TargetDesc] = "avx2",
    **session_kwargs,
) -> List[VectorizationResult]:
    """Batch entry point: one session, many functions."""
    session = VectorizationSession(target=target, **session_kwargs)
    return session.vectorize_many(functions)
