"""Recursive-descent parser for the mini-C kernel language.

Supports the subset of C that the paper's evaluation kernels use:
functions over ``restrict`` pointer/scalar parameters, scalar and
fixed-size-array locals, constant-trip ``for`` loops, compound
assignments, ternaries, casts, and the usual integer/float expression
operators.  Control flow beyond unrollable loops is intentionally absent —
VeGen vectorizes straight-line code.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.frontend.ast import (
    CAssign,
    CBinary,
    CBlockStmt,
    CCast,
    CDecl,
    CExpr,
    CFloatLit,
    CFor,
    CFunction,
    CIndex,
    CIntLit,
    CName,
    CParam,
    CReturn,
    CStmt,
    CTernary,
    CUnary,
)
from repro.frontend.ctypes import NAMED_TYPES, CType


class CSyntaxError(ValueError):
    """Raised on malformed kernel source."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][-+]?\d+)?[fF]?|\d+[fF])
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><<=|>>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=?:;,(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}
_COMPOUND_RE = re.compile(r"^(\+|-|\*|/|%|&|\||\^|<<|>>)=$")

_QUALIFIERS = {"const", "restrict", "__restrict", "__restrict__",
               "static", "inline", "signed"}


def _tokenize(source: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise CSyntaxError(f"cannot tokenize near {source[pos:pos+20]!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            continue
        text = m.group()
        if kind == "hex":
            tokens.append(("int", str(int(text, 16))))
        else:
            tokens.append((kind, text))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.pos = 0

    def peek(self, ahead: int = 0) -> Tuple[str, str]:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Tuple[str, str]:
        tok = self.tokens[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek()[1] == text and self.peek()[0] in ("op", "name"):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> None:
        kind, tok = self.peek()
        if tok != text:
            raise CSyntaxError(f"expected {text!r}, got {tok!r}")
        self.advance()

    def expect_name(self) -> str:
        kind, tok = self.advance()
        if kind != "name":
            raise CSyntaxError(f"expected identifier, got {tok!r}")
        return tok

    # -- types --------------------------------------------------------------

    def _skip_qualifiers(self) -> None:
        while self.peek()[0] == "name" and self.peek()[1] in _QUALIFIERS:
            self.advance()

    def _at_type(self, ahead: int = 0) -> bool:
        kind, tok = self.peek(ahead)
        return kind == "name" and (tok in NAMED_TYPES or tok in _QUALIFIERS)

    def _parse_type(self) -> Optional[CType]:
        self._skip_qualifiers()
        kind, tok = self.peek()
        if kind != "name" or tok not in NAMED_TYPES:
            raise CSyntaxError(f"expected a type, got {tok!r}")
        self.advance()
        if tok == "unsigned" and self.peek()[1] in ("int", "long"):
            inner = self.advance()[1]
            from repro.frontend.ctypes import CType as _CT

            return _CT(64, False) if inner == "long" else _CT(32, False)
        return NAMED_TYPES[tok]

    # -- functions ---------------------------------------------------------------

    def parse_functions(self) -> List[CFunction]:
        functions = []
        while self.peek()[0] != "eof":
            functions.append(self._parse_function())
        return functions

    def _parse_function(self) -> CFunction:
        return_type = self._parse_type()
        name = self.expect_name()
        self.expect("(")
        params: List[CParam] = []
        if not self.accept(")"):
            while True:
                params.append(self._parse_param())
                if not self.accept(","):
                    break
            self.expect(")")
        body = self._parse_block()
        return CFunction(name, return_type, tuple(params), tuple(body))

    def _parse_param(self) -> CParam:
        ctype = self._parse_type()
        if ctype is None:
            raise CSyntaxError("void parameter")
        is_pointer = False
        while self.accept("*"):
            is_pointer = True
            self._skip_qualifiers()
        name = self.expect_name()
        # Array-of-T parameter syntax decays to a pointer.
        while self.accept("["):
            is_pointer = True
            if self.peek()[0] == "int":
                self.advance()
            self.expect("]")
        return CParam(name, ctype, is_pointer)

    # -- statements ----------------------------------------------------------------

    def _parse_block(self) -> List[CStmt]:
        self.expect("{")
        stmts: List[CStmt] = []
        while not self.accept("}"):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> CStmt:
        kind, tok = self.peek()
        if tok == "{":
            return CBlockStmt(tuple(self._parse_block()))
        if tok == "for":
            return self._parse_for()
        if tok == "return":
            self.advance()
            if self.accept(";"):
                return CReturn(None)
            value = self._parse_expr()
            self.expect(";")
            return CReturn(value)
        if self._at_type() and self.peek(1)[0] == "name":
            return self._parse_decl()
        return self._parse_assign()

    def _parse_decl(self) -> CStmt:
        ctype = self._parse_type()
        if ctype is None:
            raise CSyntaxError("cannot declare a void variable")
        name = self.expect_name()
        array_size = None
        if self.accept("["):
            kind, tok = self.advance()
            if kind != "int":
                raise CSyntaxError("array size must be a constant")
            array_size = int(tok)
            self.expect("]")
        init = None
        if self.accept("="):
            init = self._parse_expr()
        self.expect(";")
        return CDecl(ctype, name, array_size, init)

    def _parse_for(self) -> CStmt:
        self.expect("for")
        self.expect("(")
        if self._at_type():
            self._parse_type()
        var = self.expect_name()
        self.expect("=")
        lo = self._parse_expr()
        self.expect(";")
        cond_var = self.expect_name()
        if cond_var != var:
            raise CSyntaxError("for-loop condition must test the loop var")
        kind, cmp_op = self.advance()
        if cmp_op not in ("<", "<="):
            raise CSyntaxError(f"unsupported loop condition {cmp_op!r}")
        hi = self._parse_expr()
        self.expect(";")
        step_var = self.expect_name()
        if step_var != var:
            raise CSyntaxError("for-loop step must update the loop var")
        if self.accept("++"):
            step: CExpr = CIntLit(1)
        elif self.accept("+="):
            step = self._parse_expr()
        else:
            raise CSyntaxError("unsupported loop step")
        self.expect(")")
        if self.peek()[1] == "{":
            body = self._parse_block()
        else:
            body = [self._parse_stmt()]
        return CFor(var, lo, cmp_op, hi, step, tuple(body))

    def _parse_assign(self) -> CStmt:
        target = self._parse_postfix()
        if not isinstance(target, (CName, CIndex)):
            raise CSyntaxError("assignment target must be a name or index")
        kind, tok = self.advance()
        if tok not in _ASSIGN_OPS:
            raise CSyntaxError(f"expected assignment operator, got {tok!r}")
        value = self._parse_expr()
        self.expect(";")
        if tok == "=":
            return CAssign(target, "=", value)
        m = _COMPOUND_RE.match(tok)
        assert m is not None
        return CAssign(target, tok, value)

    # -- expressions -------------------------------------------------------------------

    def _parse_expr(self) -> CExpr:
        return self._parse_ternary()

    def _parse_ternary(self) -> CExpr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            on_true = self._parse_expr()
            self.expect(":")
            on_false = self._parse_ternary()
            return CTernary(cond, on_true, on_false)
        return cond

    _LEVELS = [
        ("|",), ("^",), ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> CExpr:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = self._LEVELS[level]
        while self.peek()[0] == "op" and self.peek()[1] in ops:
            op = self.advance()[1]
            rhs = self._parse_binary(level + 1)
            lhs = CBinary(op, lhs, rhs)
        return lhs

    def _parse_unary(self) -> CExpr:
        kind, tok = self.peek()
        if tok in ("-", "~", "!"):
            self.advance()
            return CUnary(tok, self._parse_unary())
        if tok == "+":
            self.advance()
            return self._parse_unary()
        if tok == "(" and self._at_type(1):
            self.advance()
            ctype = self._parse_type()
            if ctype is None:
                raise CSyntaxError("cannot cast to void")
            while self.accept("*"):
                raise CSyntaxError("pointer casts are not supported")
            self.expect(")")
            return CCast(ctype, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> CExpr:
        kind, tok = self.peek()
        if tok == "(":
            self.advance()
            expr = self._parse_expr()
            self.expect(")")
            return expr
        if kind == "int":
            self.advance()
            return CIntLit(int(tok))
        if kind == "float":
            self.advance()
            text = tok
            single = text[-1] in "fF"
            if single:
                text = text[:-1]
            return CFloatLit(float(text), single)
        if kind == "name":
            name = self.advance()[1]
            if self.accept("["):
                index = self._parse_expr()
                self.expect("]")
                return CIndex(name, index)
            return CName(name)
        raise CSyntaxError(f"unexpected token {tok!r} in expression")


def parse_c(source: str) -> List[CFunction]:
    """Parse one or more kernel functions from mini-C source."""
    return _Parser(source).parse_functions()
