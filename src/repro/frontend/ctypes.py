"""C type system for the mini-C frontend.

Implements the slice of C's type rules the evaluation kernels need:
integer promotion to ``int``, the usual arithmetic conversions, and
value-preserving conversions on assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.ir.types import Type, int_type, float_type


@dataclass(frozen=True)
class CType:
    """A scalar C type: integer (width, signedness) or float."""

    width: int
    signed: bool = True
    is_float: bool = False

    @property
    def ir_type(self) -> Type:
        if self.is_float:
            return float_type(self.width)
        return int_type(self.width)

    def __repr__(self) -> str:
        if self.is_float:
            return "float" if self.width == 32 else "double"
        prefix = "int" if self.signed else "uint"
        return f"{prefix}{self.width}_t"


INT = CType(32, True)
UINT = CType(32, False)
FLOAT = CType(32, True, True)
DOUBLE = CType(64, True, True)

NAMED_TYPES = {
    "void": None,
    "int8_t": CType(8, True),
    "int16_t": CType(16, True),
    "int32_t": CType(32, True),
    "int64_t": CType(64, True),
    "uint8_t": CType(8, False),
    "uint16_t": CType(16, False),
    "uint32_t": CType(32, False),
    "uint64_t": CType(64, False),
    "int": INT,
    "unsigned": UINT,
    "long": CType(64, True),
    "float": FLOAT,
    "double": DOUBLE,
}


def promote(ty: CType) -> CType:
    """C integer promotion: everything of rank below int becomes int."""
    if ty.is_float:
        return ty
    if ty.width < 32:
        return INT  # both signed and unsigned sub-int types fit in int
    return ty


def common_type(a: CType, b: CType) -> CType:
    """The usual arithmetic conversions."""
    if a.is_float or b.is_float:
        if a.is_float and b.is_float:
            return a if a.width >= b.width else b
        return a if a.is_float else b
    a, b = promote(a), promote(b)
    if a == b:
        return a
    if a.width != b.width:
        wider = a if a.width > b.width else b
        narrower = b if a.width > b.width else a
        if wider.signed and not narrower.signed and \
                narrower.width >= wider.width:
            return CType(wider.width, False)
        return wider
    # Same width, different signedness: unsigned wins.
    return CType(a.width, False)
