"""AST for the mini-C frontend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.frontend.ctypes import CType


# -- expressions ----------------------------------------------------------


class CExpr:
    pass


@dataclass(frozen=True)
class CIntLit(CExpr):
    value: int


@dataclass(frozen=True)
class CFloatLit(CExpr):
    value: float
    is_single: bool = False  # 'f' suffix


@dataclass(frozen=True)
class CName(CExpr):
    name: str


@dataclass(frozen=True)
class CIndex(CExpr):
    base: str
    index: CExpr


@dataclass(frozen=True)
class CUnary(CExpr):
    op: str  # - ~ !
    operand: CExpr


@dataclass(frozen=True)
class CBinary(CExpr):
    op: str  # + - * / % << >> & | ^ < <= > >= == !=
    lhs: CExpr
    rhs: CExpr


@dataclass(frozen=True)
class CTernary(CExpr):
    cond: CExpr
    on_true: CExpr
    on_false: CExpr


@dataclass(frozen=True)
class CCast(CExpr):
    ctype: CType
    operand: CExpr


# -- statements --------------------------------------------------------------


class CStmt:
    pass


@dataclass(frozen=True)
class CDecl(CStmt):
    """``TYPE name = init;`` or ``TYPE name[N];``"""

    ctype: CType
    name: str
    array_size: Optional[int] = None
    init: Optional[CExpr] = None


@dataclass(frozen=True)
class CAssign(CStmt):
    """``target OP= value`` where target is a name or index expression."""

    target: CExpr  # CName or CIndex
    op: str        # '=', '+=', '-=', '*=', '&=', '|=', '^=', '<<=', '>>='
    value: CExpr


@dataclass(frozen=True)
class CFor(CStmt):
    """``for (int i = LO; i < HI; i += STEP) body`` — constant trip count,
    fully unrolled by the lowerer."""

    var: str
    lo: CExpr
    cmp_op: str   # '<' or '<='
    hi: CExpr
    step: CExpr
    body: Tuple[CStmt, ...]


@dataclass(frozen=True)
class CReturn(CStmt):
    value: Optional[CExpr]


@dataclass(frozen=True)
class CBlockStmt(CStmt):
    body: Tuple[CStmt, ...]


# -- functions --------------------------------------------------------------------


@dataclass(frozen=True)
class CParam:
    name: str
    ctype: CType
    is_pointer: bool


@dataclass(frozen=True)
class CFunction:
    name: str
    return_type: Optional[CType]  # None = void
    params: Tuple[CParam, ...]
    body: Tuple[CStmt, ...]
