"""Mini-C frontend: the clang stand-in that lowers the evaluation kernels
to straight-line scalar IR (with full unrolling and register promotion)."""

from repro.frontend.ast import CFunction
from repro.frontend.ctypes import CType, NAMED_TYPES, common_type, promote
from repro.frontend.lower import (
    LowerError,
    compile_c,
    compile_kernel,
    lower_function,
)
from repro.frontend.parser import CSyntaxError, parse_c

__all__ = [
    "CFunction", "CType", "NAMED_TYPES", "common_type", "promote",
    "LowerError", "compile_c", "compile_kernel", "lower_function",
    "CSyntaxError", "parse_c",
]
