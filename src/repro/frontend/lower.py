"""Lowering mini-C to scalar IR.

Performs the jobs clang -O3 performs on the paper's kernels before the
vectorizer sees them:

* full unrolling of constant-trip ``for`` loops;
* register promotion of local arrays (every element becomes an SSA
  value — the paper's kernels never take the address of a local);
* C's integer promotions and usual arithmetic conversions;
* simple redundant-load elimination per buffer (clang's GVN does this for
  ``restrict`` pointers).

The result is one straight-line IR function per kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.frontend.ast import (
    CAssign,
    CBinary,
    CBlockStmt,
    CCast,
    CDecl,
    CExpr,
    CFloatLit,
    CFor,
    CFunction,
    CIndex,
    CIntLit,
    CName,
    CReturn,
    CStmt,
    CTernary,
    CUnary,
)
from repro.frontend.ctypes import CType, INT, common_type, promote
from repro.frontend.parser import parse_c
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import ICmpPred, FCmpPred
from repro.ir.types import pointer_to
from repro.ir.values import Argument, Constant, Value
from repro.utils.intmath import mask, to_signed


class LowerError(ValueError):
    """Raised when a kernel cannot be lowered to straight-line IR."""


BOOL = CType(1, False)


class TypedValue:
    """An IR value tagged with its C type."""

    __slots__ = ("value", "ctype")

    def __init__(self, value: Value, ctype: CType):
        self.value = value
        self.ctype = ctype


Number = Union[int, float]
Operand = Union[Number, TypedValue]


class _PointerParam:
    __slots__ = ("arg", "ctype")

    def __init__(self, arg: Argument, ctype: CType):
        self.arg = arg
        self.ctype = ctype


class _LocalArray:
    __slots__ = ("ctype", "size", "elements")

    def __init__(self, ctype: CType, size: int):
        self.ctype = ctype
        self.size = size
        self.elements: Dict[int, Operand] = {}


def compile_c(source: str) -> List[Function]:
    """Parse and lower every function in the source."""
    return [lower_function(f) for f in parse_c(source)]


def compile_kernel(source: str) -> Function:
    """Parse and lower a single-function source."""
    functions = compile_c(source)
    if len(functions) != 1:
        raise LowerError(f"expected one function, got {len(functions)}")
    return functions[0]


def lower_function(cfunc: CFunction) -> Function:
    return _Lowerer(cfunc).run()


class _Lowerer:
    def __init__(self, cfunc: CFunction):
        self.cfunc = cfunc
        arg_specs = []
        for p in cfunc.params:
            ir_ty = p.ctype.ir_type
            arg_specs.append(
                (p.name, pointer_to(ir_ty) if p.is_pointer else ir_ty)
            )
        ret = cfunc.return_type.ir_type if cfunc.return_type else None
        self.function = (
            Function(cfunc.name, arg_specs, ret)
            if ret is not None else Function(cfunc.name, arg_specs)
        )
        self.builder = IRBuilder(self.function)
        self.env: Dict[str, object] = {}
        for p, arg in zip(cfunc.params, self.function.args):
            if p.is_pointer:
                self.env[p.name] = _PointerParam(arg, p.ctype)
            else:
                self.env[p.name] = TypedValue(arg, p.ctype)
        # (buffer id, offset) -> cached load TypedValue
        self._load_cache: Dict[Tuple[int, int], TypedValue] = {}
        # (buffer id, offset) -> most recent store instruction (for DSE)
        self._last_store: Dict[Tuple[int, int], object] = {}
        self._returned = False

    def run(self) -> Function:
        self._exec_stmts(self.cfunc.body)
        if not self._returned:
            if self.cfunc.return_type is not None:
                raise LowerError(f"{self.cfunc.name}: missing return")
            self.builder.ret()
        return self.function

    # -- statements ------------------------------------------------------------

    def _exec_stmts(self, stmts) -> None:
        for stmt in stmts:
            if self._returned:
                raise LowerError("unreachable code after return")
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: CStmt) -> None:
        if isinstance(stmt, CBlockStmt):
            self._exec_stmts(stmt.body)
        elif isinstance(stmt, CDecl):
            self._exec_decl(stmt)
        elif isinstance(stmt, CAssign):
            self._exec_assign(stmt)
        elif isinstance(stmt, CFor):
            self._exec_for(stmt)
        elif isinstance(stmt, CReturn):
            self._exec_return(stmt)
        else:
            raise LowerError(f"unsupported statement {stmt!r}")

    def _exec_decl(self, stmt: CDecl) -> None:
        if stmt.array_size is not None:
            if stmt.init is not None:
                raise LowerError("array initializers are not supported")
            self.env[stmt.name] = _LocalArray(stmt.ctype, stmt.array_size)
            return
        if stmt.init is None:
            self.env[stmt.name] = _Uninitialized(stmt.ctype)
            return
        value = self._eval(stmt.init)
        self.env[stmt.name] = self._coerce_binding(value, stmt.ctype)

    def _coerce_binding(self, value: Operand, ctype: CType) -> object:
        # Compile-time integer constants stay Python ints so they can be
        # used in index contexts; they are materialized on demand.
        if isinstance(value, int) and not ctype.is_float:
            return _CompileTimeInt(value, ctype)
        return TypedValue(self._materialize(
            self._convert(value, ctype), ctype), ctype)

    def _exec_assign(self, stmt: CAssign) -> None:
        target = stmt.target
        if stmt.op == "=":
            value = self._eval(stmt.value)
        else:
            current = self._read_target(target)
            value = self._binary(stmt.op[:-1], current,
                                 self._eval(stmt.value))
        self._write_target(target, value)

    def _read_target(self, target: CExpr) -> Operand:
        if isinstance(target, CName):
            return self._eval(target)
        assert isinstance(target, CIndex)
        return self._eval(target)

    def _write_target(self, target: CExpr, value: Operand) -> None:
        if isinstance(target, CName):
            binding = self.env.get(target.name)
            if binding is None:
                raise LowerError(f"assignment to undeclared "
                                 f"{target.name!r}")
            if isinstance(binding, (_Uninitialized, _CompileTimeInt,
                                    TypedValue)):
                ctype = binding.ctype
                self.env[target.name] = self._coerce_binding(value, ctype)
                return
            raise LowerError(f"cannot assign to {target.name!r}")
        assert isinstance(target, CIndex)
        base = self.env.get(target.base)
        index = self._const_index(target.index)
        if isinstance(base, _LocalArray):
            if not 0 <= index < base.size:
                raise LowerError(
                    f"{target.base}[{index}] out of bounds "
                    f"(size {base.size})"
                )
            converted = self._convert(value, base.ctype)
            if isinstance(converted, (int, float)):
                base.elements[index] = converted
            else:
                base.elements[index] = TypedValue(
                    self._materialize(converted, base.ctype), base.ctype
                )
            return
        if isinstance(base, _PointerParam):
            converted = self._materialize(
                self._convert(value, base.ctype), base.ctype
            )
            store = self.builder.store(converted, base.arg, index)
            # Dead-store elimination: with restrict pointers and constant
            # offsets, an earlier store to the same location that nothing
            # re-read from memory is dead (clang's DSE does this to
            # ``+=`` accumulation chains).
            key = (id(base.arg), index)
            old = self._last_store.get(key)
            if old is not None:
                pointer = old.pointer
                old.drop_operands()
                self.function.entry.remove(old)
                if pointer.num_uses == 0 and pointer.parent is not None:
                    pointer.drop_operands()
                    self.function.entry.remove(pointer)
            self._last_store[key] = store
            # Invalidate cached loads of this buffer.
            self._load_cache = {
                cache_key: cached
                for cache_key, cached in self._load_cache.items()
                if cache_key[0] != id(base.arg)
            }
            self._load_cache[key] = TypedValue(converted, base.ctype)
            return
        raise LowerError(f"cannot index {target.base!r}")

    def _exec_for(self, stmt: CFor) -> None:
        lo = self._const_index(stmt.lo)
        hi = self._const_index(stmt.hi)
        step = self._const_index(stmt.step)
        if step <= 0:
            raise LowerError("loop step must be positive")
        saved = self.env.get(stmt.var)
        value = lo
        while (value < hi) if stmt.cmp_op == "<" else (value <= hi):
            self.env[stmt.var] = _CompileTimeInt(value, INT)
            self._exec_stmts(stmt.body)
            value += step
        if saved is not None:
            self.env[stmt.var] = saved
        else:
            self.env.pop(stmt.var, None)

    def _exec_return(self, stmt: CReturn) -> None:
        if stmt.value is None:
            if self.cfunc.return_type is not None:
                raise LowerError("return without value")
            self.builder.ret()
        else:
            if self.cfunc.return_type is None:
                raise LowerError("void function returns a value")
            value = self._materialize(
                self._convert(self._eval(stmt.value),
                              self.cfunc.return_type),
                self.cfunc.return_type,
            )
            self.builder.ret(value)
        self._returned = True

    # -- expressions --------------------------------------------------------------

    def _const_index(self, expr: CExpr) -> int:
        value = self._eval(expr)
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        raise LowerError(
            "index/bound expressions must fold to compile-time constants"
        )

    def _eval(self, expr: CExpr) -> Operand:
        if isinstance(expr, CIntLit):
            return expr.value
        if isinstance(expr, CFloatLit):
            return expr.value
        if isinstance(expr, CName):
            binding = self.env.get(expr.name)
            if binding is None:
                raise LowerError(f"use of undeclared {expr.name!r}")
            if isinstance(binding, _CompileTimeInt):
                return binding.value
            if isinstance(binding, _Uninitialized):
                raise LowerError(f"use of uninitialized {expr.name!r}")
            if isinstance(binding, TypedValue):
                return binding
            raise LowerError(f"{expr.name!r} is not a scalar value")
        if isinstance(expr, CIndex):
            return self._eval_index(expr)
        if isinstance(expr, CUnary):
            return self._eval_unary(expr)
        if isinstance(expr, CBinary):
            return self._binary(expr.op, self._eval(expr.lhs),
                                self._eval(expr.rhs))
        if isinstance(expr, CTernary):
            return self._eval_ternary(expr)
        if isinstance(expr, CCast):
            value = self._eval(expr.operand)
            converted = self._convert(value, expr.ctype)
            if isinstance(converted, (int, float)):
                return converted
            return TypedValue(
                self._materialize(converted, expr.ctype), expr.ctype
            )
        raise LowerError(f"unsupported expression {expr!r}")

    def _eval_index(self, expr: CIndex) -> Operand:
        base = self.env.get(expr.base)
        index = self._const_index(expr.index)
        if isinstance(base, _LocalArray):
            if index not in base.elements:
                raise LowerError(
                    f"read of uninitialized {expr.base}[{index}]"
                )
            return base.elements[index]
        if isinstance(base, _PointerParam):
            cached = self._load_cache.get((id(base.arg), index))
            if cached is not None:
                return cached
            load = self.builder.load(base.arg, index)
            result = TypedValue(load, base.ctype)
            self._load_cache[(id(base.arg), index)] = result
            return result
        raise LowerError(f"cannot index {expr.base!r}")

    def _eval_unary(self, expr: CUnary) -> Operand:
        value = self._eval(expr.operand)
        if isinstance(value, (int, float)):
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~int(value)
            if expr.op == "!":
                return int(value == 0)
        assert isinstance(value, TypedValue)
        if expr.op == "-":
            if value.ctype.is_float:
                return TypedValue(self.builder.fneg(value.value),
                                  value.ctype)
            ctype = promote(value.ctype)
            widened = self._to_type(value, ctype)
            zero = Constant(ctype.ir_type, 0)
            return TypedValue(self.builder.sub(zero, widened), ctype)
        if expr.op == "~":
            ctype = promote(value.ctype)
            widened = self._to_type(value, ctype)
            ones = Constant(ctype.ir_type, -1)
            return TypedValue(self.builder.xor(widened, ones), ctype)
        raise LowerError(f"unsupported unary {expr.op!r} on runtime value")

    def _eval_ternary(self, expr: CTernary) -> Operand:
        cond = self._eval(expr.cond)
        if isinstance(cond, (int, float)):
            return self._eval(expr.on_true if cond else expr.on_false)
        cond_value = self._as_bool(cond)
        lhs = self._eval(expr.on_true)
        rhs = self._eval(expr.on_false)
        ctype = self._result_type(lhs, rhs)
        lv = self._materialize(self._convert(lhs, ctype), ctype)
        rv = self._materialize(self._convert(rhs, ctype), ctype)
        return TypedValue(self.builder.select(cond_value, lv, rv), ctype)

    def _as_bool(self, value: TypedValue) -> Value:
        if value.ctype == BOOL:
            return value.value
        if value.ctype.is_float:
            zero = Constant(value.ctype.ir_type, 0.0)
            return self.builder.fcmp(FCmpPred.ONE, value.value, zero)
        zero = Constant(value.ctype.ir_type, 0)
        return self.builder.icmp(ICmpPred.NE, value.value, zero)

    # -- conversions -----------------------------------------------------------------

    def _result_type(self, a: Operand, b: Operand) -> CType:
        ta = self._ctype_of(a)
        tb = self._ctype_of(b)
        if ta is None and tb is None:
            # Two constants: default to int/double.
            if isinstance(a, float) or isinstance(b, float):
                from repro.frontend.ctypes import DOUBLE

                return DOUBLE
            return INT
        if ta is None:
            return promote(tb) if not tb.is_float else tb
        if tb is None:
            return promote(ta) if not ta.is_float else ta
        return common_type(ta, tb)

    def _ctype_of(self, value: Operand) -> Optional[CType]:
        if isinstance(value, TypedValue):
            return value.ctype if value.ctype != BOOL else INT
        return None

    def _convert(self, value: Operand, ctype: CType) -> Operand:
        """Convert to a C type; constants stay Python numbers."""
        if isinstance(value, (int, float)):
            if ctype.is_float:
                return float(value)
            masked = mask(int(value), ctype.width)
            return to_signed(masked, ctype.width) if ctype.signed \
                else masked
        assert isinstance(value, TypedValue)
        converted = self._to_type(value, ctype)
        return TypedValue(converted, ctype)

    def _materialize(self, value: Operand, ctype: CType) -> Value:
        if isinstance(value, TypedValue):
            return value.value
        return Constant(ctype.ir_type, value)

    def _to_type(self, value: TypedValue, ctype: CType) -> Value:
        src = value.ctype
        v = value.value
        if src == BOOL:
            if ctype.is_float:
                raise LowerError("cannot convert a comparison to float")
            return self.builder.zext(v, ctype.ir_type)
        if src == ctype:
            return v
        if src.is_float and ctype.is_float:
            if ctype.width > src.width:
                return self.builder.fpext(v, ctype.ir_type)
            if ctype.width < src.width:
                return self.builder.fptrunc(v, ctype.ir_type)
            return v
        if src.is_float and not ctype.is_float:
            return self.builder.fptosi(v, ctype.ir_type)
        if not src.is_float and ctype.is_float:
            if not src.signed:
                raise LowerError("unsigned-to-float is not supported")
            return self.builder.sitofp(v, ctype.ir_type)
        if ctype.width > src.width:
            if src.signed:
                return self.builder.sext(v, ctype.ir_type)
            return self.builder.zext(v, ctype.ir_type)
        if ctype.width < src.width:
            return self.builder.trunc(v, ctype.ir_type)
        return v  # same width, signedness reinterpretation is a no-op

    # -- binary operations ----------------------------------------------------------------

    def _binary(self, op: str, lhs: Operand, rhs: Operand) -> Operand:
        if isinstance(lhs, (int, float)) and isinstance(rhs, (int, float)):
            return _fold_const(op, lhs, rhs)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return self._compare(op, lhs, rhs)
        if op in ("<<", ">>"):
            return self._shift(op, lhs, rhs)
        ctype = self._result_type(lhs, rhs)
        lv = self._materialize(self._convert(lhs, ctype), ctype)
        rv = self._materialize(self._convert(rhs, ctype), ctype)
        b = self.builder
        if ctype.is_float:
            ops = {"+": b.fadd, "-": b.fsub, "*": b.fmul, "/": b.fdiv}
            if op not in ops:
                raise LowerError(f"{op!r} is not defined on floats")
            return TypedValue(ops[op](lv, rv), ctype)
        ops = {
            "+": b.add, "-": b.sub, "*": b.mul,
            "&": b.and_, "|": b.or_, "^": b.xor,
            "/": b.sdiv if ctype.signed else b.udiv,
            "%": b.srem if ctype.signed else b.urem,
        }
        if op not in ops:
            raise LowerError(f"unsupported operator {op!r}")
        return TypedValue(ops[op](lv, rv), ctype)

    def _compare(self, op: str, lhs: Operand, rhs: Operand) -> Operand:
        ctype = self._result_type(lhs, rhs)
        lv = self._materialize(self._convert(lhs, ctype), ctype)
        rv = self._materialize(self._convert(rhs, ctype), ctype)
        if ctype.is_float:
            preds = {"<": FCmpPred.OLT, "<=": FCmpPred.OLE,
                     ">": FCmpPred.OGT, ">=": FCmpPred.OGE,
                     "==": FCmpPred.OEQ, "!=": FCmpPred.ONE}
            return TypedValue(
                self.builder.fcmp(preds[op], lv, rv), BOOL
            )
        if ctype.signed:
            preds = {"<": ICmpPred.SLT, "<=": ICmpPred.SLE,
                     ">": ICmpPred.SGT, ">=": ICmpPred.SGE,
                     "==": ICmpPred.EQ, "!=": ICmpPred.NE}
        else:
            preds = {"<": ICmpPred.ULT, "<=": ICmpPred.ULE,
                     ">": ICmpPred.UGT, ">=": ICmpPred.UGE,
                     "==": ICmpPred.EQ, "!=": ICmpPred.NE}
        return TypedValue(self.builder.icmp(preds[op], lv, rv), BOOL)

    def _shift(self, op: str, lhs: Operand, rhs: Operand) -> Operand:
        lt = self._ctype_of(lhs)
        ctype = promote(lt) if lt is not None else INT
        lv = self._materialize(self._convert(lhs, ctype), ctype)
        amount = self._convert(rhs, ctype)
        rv = self._materialize(amount, ctype)
        b = self.builder
        if op == "<<":
            return TypedValue(b.shl(lv, rv), ctype)
        if ctype.signed:
            return TypedValue(b.ashr(lv, rv), ctype)
        return TypedValue(b.lshr(lv, rv), ctype)


class _CompileTimeInt:
    """An integer local whose value is known at compile time (loop vars
    and constant-initialized locals)."""

    __slots__ = ("value", "ctype")

    def __init__(self, value: int, ctype: CType):
        if not ctype.is_float:
            masked = mask(value, ctype.width)
            value = to_signed(masked, ctype.width) if ctype.signed \
                else masked
        self.value = value
        self.ctype = ctype


class _Uninitialized:
    __slots__ = ("ctype",)

    def __init__(self, ctype: CType):
        self.ctype = ctype


def _fold_const(op: str, lhs: Number, rhs: Number) -> Number:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise LowerError("compile-time division by zero")
        if isinstance(lhs, int) and isinstance(rhs, int):
            return int(lhs / rhs)
        return lhs / rhs
    if op == "%":
        quotient = int(lhs / rhs)
        return lhs - quotient * rhs
    if op == "<<":
        return int(lhs) << int(rhs)
    if op == ">>":
        return int(lhs) >> int(rhs)
    if op == "&":
        return int(lhs) & int(rhs)
    if op == "|":
        return int(lhs) | int(rhs)
    if op == "^":
        return int(lhs) ^ int(rhs)
    comparisons = {"<": lhs < rhs, "<=": lhs <= rhs, ">": lhs > rhs,
                   ">=": lhs >= rhs, "==": lhs == rhs, "!=": lhs != rhs}
    if op in comparisons:
        return int(comparisons[op])
    raise LowerError(f"cannot fold {op!r}")
