"""VIDLLint: structural checks on generated instruction descriptions.

The lifter is supposed to guarantee these by construction (Figure 5's
restriction that lane indices are constants, one write per output lane,
type-consistent bindings); the lint re-verifies every registered
``TargetInstruction`` so regressions in the offline pipeline — or
hand-built target descriptions like the ``examples/`` extension — are
caught deterministically.  It also checks cost-table coverage: every
instruction carries a positive finite cost, and every pattern in the
target's operation index is backed by a real instruction.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.manager import AnalysisPass, AnalysisUnit


class VIDLLint(AnalysisPass):
    name = "vidllint"

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        target = unit.target
        if target is None:
            return diagnostics

        for inst in target.instructions:
            diagnostics.extend(self._check_instruction(target.name, inst))

        # Match-table pattern coverage: every operation in the index must
        # come from some instruction's match patterns.
        backed = {
            op.key()
            for inst in target.instructions
            for op in inst.match_ops
        }
        for op in target.operation_index.operations:
            if op.key() not in backed:
                diagnostics.append(self.diag(
                    ERROR, f"target {target.name}",
                    f"match-table pattern {op!r} references no real "
                    f"instruction",
                ))
        return diagnostics

    def _check_instruction(self, target_name: str,
                           inst) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        location = f"target {target_name}: {inst.name}"
        desc = inst.desc

        cost = getattr(inst, "cost", None)
        if cost is None or not isinstance(cost, (int, float)) or \
                not math.isfinite(cost) or cost <= 0:
            diagnostics.append(self.diag(
                ERROR, location,
                f"no usable cost-table entry (cost={cost!r})",
            ))

        if len(desc.lane_ops) != desc.num_lanes:
            diagnostics.append(self.diag(
                ERROR, location,
                f"{len(desc.lane_ops)} lane operations for "
                f"{desc.num_lanes} output lanes (missing or overlapping "
                f"lane writes)",
            ))
            return diagnostics

        if len(inst.match_ops) != desc.num_lanes:
            diagnostics.append(self.diag(
                ERROR, location,
                f"{len(inst.match_ops)} match patterns for "
                f"{desc.num_lanes} output lanes",
            ))

        for lane, lane_op in enumerate(desc.lane_ops):
            operation = lane_op.operation
            if len(lane_op.bindings) != len(operation.params):
                diagnostics.append(self.diag(
                    ERROR, location,
                    f"lane {lane}: {len(lane_op.bindings)} bindings for "
                    f"{len(operation.params)} operation parameters",
                ))
                continue
            if operation.result_type != desc.out_elem_type:
                diagnostics.append(self.diag(
                    ERROR, location,
                    f"lane {lane}: operation produces "
                    f"{operation.result_type}, output lanes are "
                    f"{desc.out_elem_type}",
                ))
            for param_pos, ref in enumerate(lane_op.bindings):
                if not isinstance(ref.lane_index, int) or \
                        isinstance(ref.lane_index, bool):
                    diagnostics.append(self.diag(
                        ERROR, location,
                        f"lane {lane}: non-constant lane index "
                        f"{ref.lane_index!r} (Figure 5 requires constant "
                        f"lane indices)",
                    ))
                    continue
                if not (0 <= ref.input_index < desc.num_inputs):
                    diagnostics.append(self.diag(
                        ERROR, location,
                        f"lane {lane}: binding references input "
                        f"x{ref.input_index} of {desc.num_inputs}",
                    ))
                    continue
                vin = desc.inputs[ref.input_index]
                if not (0 <= ref.lane_index < vin.lanes):
                    diagnostics.append(self.diag(
                        ERROR, location,
                        f"lane {lane}: binding reads lane "
                        f"{ref.lane_index} of {vin.lanes}-lane input "
                        f"x{ref.input_index}",
                    ))
                    continue
                param_type = operation.params[param_pos]
                if param_type != vin.elem_type:
                    diagnostics.append(self.diag(
                        ERROR, location,
                        f"lane {lane}: parameter {param_pos} expects "
                        f"{param_type}, input x{ref.input_index} lanes "
                        f"are {vin.elem_type}",
                    ))
        return diagnostics
