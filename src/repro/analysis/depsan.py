"""DepSan: schedule/dependence sanitizer.

Verifies the emitted vector program is a topological order of the scalar
dependence DAG — including memory dependences — of the function it was
generated from.  This is an effective race/reorder detector for the
scheduler: every original instruction that survives into the program
(as a scalar, or covered by a lowered pack) must appear no earlier than
everything it depends on, and every vector node must be emitted after the
nodes it reads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.manager import AnalysisPass, AnalysisUnit


def _node_inputs(node) -> List[object]:
    """Vector-program nodes this node reads."""
    from repro.vectorizer.vector_ir import (
        VExtract,
        VGather,
        VOp,
        VStore,
    )

    if isinstance(node, VOp):
        return list(node.operands)
    if isinstance(node, VStore):
        return [node.source]
    if isinstance(node, VExtract):
        return [node.source]
    if isinstance(node, VGather):
        return [s.node for s in node.sources if s.kind == "lane"]
    return []


def _original_instructions(node) -> List[object]:
    """Original scalar instructions this emitted node executes/replaces."""
    from repro.vectorizer.vector_ir import VScalar

    if isinstance(node, VScalar):
        return [node.inst]
    origin = getattr(node, "origin", None)
    if origin is not None:
        return [v for v in origin.values() if v is not None]
    return []


class DepSan(AnalysisPass):
    name = "depsan"

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        if unit.program is None:
            return diagnostics
        fn_name = getattr(unit.function, "name", "<function>")
        nodes = unit.program.nodes
        position: Dict[int, int] = {id(n): i for i, n in enumerate(nodes)}

        # 1. Vector-level SSA: a node only reads already-emitted nodes.
        for i, node in enumerate(nodes):
            for source in _node_inputs(node):
                j = position.get(id(source))
                if j is None:
                    diagnostics.append(self.diag(
                        ERROR,
                        f"{fn_name}: node {i} ({node.describe()})",
                        "reads a node that is not in the program",
                    ))
                elif j >= i:
                    diagnostics.append(self.diag(
                        ERROR,
                        f"{fn_name}: node {i} ({node.describe()})",
                        f"reads node {j} ({nodes[j].describe()}) emitted "
                        f"at or after it",
                    ))

        # 2. Scalar-level: emitted order must topologically respect the
        # dependence DAG (data and memory edges) of the original function.
        from repro.ir.dag import DependenceGraph

        dep_graph = DependenceGraph(unit.function)
        emitted: Dict[int, int] = {}
        for i, node in enumerate(nodes):
            for inst in _original_instructions(node):
                emitted[id(inst)] = i
        for inst in unit.function.entry:
            i = emitted.get(id(inst))
            if i is None:
                continue
            for dep in dep_graph.direct_dependences(inst):
                j = emitted.get(id(dep))
                if j is not None and j > i:
                    kind = ("memory" if inst.is_memory and dep.is_memory
                            else "data")
                    diagnostics.append(self.diag(
                        ERROR,
                        f"{fn_name}: node {i} ({nodes[i].describe()})",
                        f"{kind} dependence violated: executes "
                        f"{inst.short_name()} before its dependence "
                        f"{dep.short_name()} (node {j})",
                    ))
        return diagnostics
