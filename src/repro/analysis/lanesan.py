"""LaneSan: lane-binding sanitizer (§4's correct-by-construction claim).

For every compute pack, chase the offline-generated lane bindings and
verify that each live output lane really computes the scalar instruction
it replaced: the match's operation must be the instruction's canonical
pattern for that lane, and the pack's operand vectors must deliver exactly
the match's live-ins to the lane operation's parameters.  ``DONT_CARE``
operand lanes must never be consumed by a live output lane — neither at
the pack level nor in the emitted program (an undef gather lane feeding a
live lane operation).
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.manager import AnalysisPass, AnalysisUnit


class LaneSan(AnalysisPass):
    name = "lanesan"

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        from repro.ir.values import constants_equal
        from repro.vectorizer.pack import ComputePack
        from repro.vidl.interp import DONT_CARE

        diagnostics: List[Diagnostic] = []
        fn_name = getattr(unit.function, "name", "<function>")

        for pack in unit.packs:
            if not isinstance(pack, ComputePack):
                continue
            inst = pack.inst
            desc = inst.desc
            operands = pack.operands()
            location = f"{fn_name}: pack {inst.name}"

            for lane, match in enumerate(pack.matches):
                if match is None:
                    continue  # dead output lane: nothing replaced
                lane_op = desc.lane_ops[lane]
                if match.operation.key() != inst.match_ops[lane].key():
                    diagnostics.append(self.diag(
                        ERROR, location,
                        f"lane {lane}: matched operation does not equal "
                        f"the instruction's canonical pattern",
                    ))
                    continue
                if len(match.live_ins) != len(lane_op.bindings):
                    diagnostics.append(self.diag(
                        ERROR, location,
                        f"lane {lane}: {len(match.live_ins)} live-ins for "
                        f"{len(lane_op.bindings)} lane bindings",
                    ))
                    continue
                for param_pos, ref in enumerate(lane_op.bindings):
                    if not (0 <= ref.input_index < len(operands)):
                        diagnostics.append(self.diag(
                            ERROR, location,
                            f"lane {lane}: binding references input "
                            f"x{ref.input_index} which does not exist",
                        ))
                        continue
                    operand = operands[ref.input_index]
                    if not (0 <= ref.lane_index < len(operand)):
                        diagnostics.append(self.diag(
                            ERROR, location,
                            f"lane {lane}: binding reads lane "
                            f"{ref.lane_index} of a {len(operand)}-lane "
                            f"operand",
                        ))
                        continue
                    element = operand[ref.lane_index]
                    expected = match.live_ins[param_pos]
                    if element is DONT_CARE:
                        diagnostics.append(self.diag(
                            ERROR, location,
                            f"live lane {lane} consumes don't-care input "
                            f"lane x{ref.input_index}[{ref.lane_index}]",
                        ))
                    elif element is not expected and not constants_equal(
                            element, expected):
                        diagnostics.append(self.diag(
                            ERROR, location,
                            f"lane {lane}: operand "
                            f"x{ref.input_index}[{ref.lane_index}] no "
                            f"longer carries the matched live-in "
                            f"{expected!r}",
                        ))

        diagnostics.extend(self._check_program(unit, fn_name))
        return diagnostics

    def _check_program(self, unit: AnalysisUnit,
                       fn_name: str) -> List[Diagnostic]:
        """Emitted-program view: undef gather lanes must not feed live
        lane operations."""
        from repro.vectorizer.vector_ir import VGather, VOp

        diagnostics: List[Diagnostic] = []
        if unit.program is None:
            return diagnostics
        for position, node in enumerate(unit.program.nodes):
            if not isinstance(node, VOp):
                continue
            desc = node.inst.desc
            location = (f"{fn_name}: node {position} ({node.inst.name})")
            if len(node.live_lanes) != desc.num_lanes:
                diagnostics.append(self.diag(
                    ERROR, location,
                    f"{len(node.live_lanes)} live-lane flags for "
                    f"{desc.num_lanes} output lanes",
                ))
                continue
            if len(node.operands) != desc.num_inputs:
                diagnostics.append(self.diag(
                    ERROR, location,
                    f"{len(node.operands)} operands for "
                    f"{desc.num_inputs} inputs",
                ))
                continue
            for lane, live in enumerate(node.live_lanes):
                if not live:
                    continue
                for ref in desc.lane_ops[lane].bindings:
                    source = node.operands[ref.input_index]
                    if isinstance(source, VGather) and \
                            ref.lane_index < len(source.sources) and \
                            source.sources[ref.lane_index].kind == "undef":
                        diagnostics.append(self.diag(
                            ERROR, location,
                            f"live lane {lane} reads undef gather lane "
                            f"x{ref.input_index}[{ref.lane_index}]",
                        ))
        return diagnostics
