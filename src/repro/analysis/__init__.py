"""Static sanitizer suite for the vectorizer (lane, dependence, type
checking across scalar IR, VIDL descriptions, and emitted vector
programs), plus the dataflow engine and the TransVal translation
validator built on it.

Quick start::

    from repro.analysis import AnalysisManager, AnalysisUnit

    result = vectorize(fn, target="avx2")
    diagnostics = AnalysisManager().run(
        AnalysisUnit.from_result(result, target=get_target("avx2")))
    for diag in diagnostics:
        print(diag.format())

or simply ``vectorize(fn, sanitize=True)`` / ``repro lint`` from the CLI.
For static equivalence proofs use ``vectorize(fn, verify=True)`` /
``repro verify`` (see :mod:`repro.analysis.transval`).
"""

from repro.analysis.dataflow import (
    DataflowFacts,
    DataflowLint,
    KnownBits,
    ValueRange,
    compute_dataflow,
)
from repro.analysis.depsan import DepSan
from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    SanitizerError,
    errors_only,
)
from repro.analysis.irlint import IRLint
from repro.analysis.lanesan import LaneSan
from repro.analysis.manager import (
    AnalysisManager,
    AnalysisPass,
    AnalysisUnit,
    analyze_result,
    default_passes,
)
from repro.analysis.transval import (
    TransVal,
    TransValConfig,
    TransValReport,
    TranslationValidationError,
    validate_program,
    validate_result,
)
from repro.analysis.vidllint import VIDLLint

__all__ = [
    "ERROR",
    "WARNING",
    "AnalysisManager",
    "AnalysisPass",
    "AnalysisUnit",
    "DataflowFacts",
    "DataflowLint",
    "DepSan",
    "Diagnostic",
    "IRLint",
    "KnownBits",
    "LaneSan",
    "SanitizerError",
    "TransVal",
    "TransValConfig",
    "TransValReport",
    "TranslationValidationError",
    "VIDLLint",
    "ValueRange",
    "analyze_result",
    "compute_dataflow",
    "default_passes",
    "errors_only",
    "validate_program",
    "validate_result",
]
