"""Static sanitizer suite for the vectorizer (lane, dependence, type
checking across scalar IR, VIDL descriptions, and emitted vector
programs).

Quick start::

    from repro.analysis import AnalysisManager, AnalysisUnit

    result = vectorize(fn, target="avx2")
    diagnostics = AnalysisManager().run(
        AnalysisUnit.from_result(result, target=get_target("avx2")))
    for diag in diagnostics:
        print(diag.format())

or simply ``vectorize(fn, sanitize=True)`` / ``repro lint`` from the CLI.
"""

from repro.analysis.depsan import DepSan
from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    SanitizerError,
    errors_only,
)
from repro.analysis.irlint import IRLint
from repro.analysis.lanesan import LaneSan
from repro.analysis.manager import (
    AnalysisManager,
    AnalysisPass,
    AnalysisUnit,
    analyze_result,
    default_passes,
)
from repro.analysis.vidllint import VIDLLint

__all__ = [
    "ERROR",
    "WARNING",
    "AnalysisManager",
    "AnalysisPass",
    "AnalysisUnit",
    "DepSan",
    "Diagnostic",
    "IRLint",
    "LaneSan",
    "SanitizerError",
    "VIDLLint",
    "analyze_result",
    "default_passes",
    "errors_only",
]
