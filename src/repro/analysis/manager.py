"""The analysis manager: a pluggable pass pipeline over one unit.

An :class:`AnalysisUnit` bundles the three program representations a
vectorization run produces — the (canonicalized) scalar IR function, the
selected packs, and the emitted vector program — plus the target
description.  Passes inspect whichever parts they understand and skip the
rest, so the same manager lints a plain scalar function or a full
vectorization result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic


@dataclass
class AnalysisUnit:
    """Everything one analysis run may look at.

    ``program``/``packs``/``target`` are optional: passes that need a
    missing part simply report nothing for it.
    """

    function: object                      # repro.ir.Function
    program: Optional[object] = None      # vectorizer VectorProgram
    packs: Sequence[object] = ()          # selected Pack list
    target: Optional[object] = None       # TargetDesc

    @classmethod
    def from_result(cls, result, target=None) -> "AnalysisUnit":
        """Build a unit from a :class:`VectorizationResult`."""
        return cls(
            function=result.function,
            program=result.program,
            packs=list(result.packs),
            target=target,
        )


class AnalysisPass:
    """Base class: one registered static check."""

    name = "analysis"

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        raise NotImplementedError

    def diag(self, severity: str, location: str,
             message: str) -> Diagnostic:
        return Diagnostic(severity, self.name, location, message)


class AnalysisManager:
    """Runs registered passes in order and concatenates their findings."""

    def __init__(self, passes: Optional[Sequence[AnalysisPass]] = None):
        if passes is None:
            passes = default_passes()
        self.passes: List[AnalysisPass] = list(passes)

    def register(self, analysis_pass: AnalysisPass) -> None:
        self.passes.append(analysis_pass)

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        seen = set()
        for analysis_pass in self.passes:
            for diag in analysis_pass.run(unit):
                # Deduplicate: passes over overlapping representations
                # (e.g. per-pack and per-program walks) can report the
                # same finding more than once.
                key = (diag.severity, diag.pass_name, diag.location,
                       diag.message)
                if key in seen:
                    continue
                seen.add(key)
                diagnostics.append(diag)
        return diagnostics


def default_passes() -> List[AnalysisPass]:
    """The stock sanitizers, in cheap-to-thorough order."""
    from repro.analysis.dataflow import DataflowLint
    from repro.analysis.depsan import DepSan
    from repro.analysis.irlint import IRLint
    from repro.analysis.lanesan import LaneSan
    from repro.analysis.vidllint import VIDLLint

    return [IRLint(), DataflowLint(), VIDLLint(), LaneSan(), DepSan()]


def analyze_result(result, target=None,
                   manager: Optional[AnalysisManager] = None
                   ) -> List[Diagnostic]:
    """Run the (default) manager over one vectorization result."""
    if manager is None:
        manager = AnalysisManager()
    return manager.run(AnalysisUnit.from_result(result, target=target))
