"""Unified diagnostics for the sanitizer suite.

Every analysis pass reports findings as :class:`Diagnostic` values instead
of raising on the first problem, so one run can surface every issue in a
program and callers can decide severity policy themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

#: Diagnostic severities, most severe first.
ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one analysis pass."""

    severity: str     # "error" | "warning"
    pass_name: str    # e.g. "lanesan"
    location: str     # human-readable anchor, e.g. "dot: node 3 (pmaddwd_128)"
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def format(self) -> str:
        return (f"{self.severity}: [{self.pass_name}] "
                f"{self.location}: {self.message}")

    def __str__(self) -> str:
        return self.format()


def errors_only(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity == ERROR]


class SanitizerError(RuntimeError):
    """Raised by ``vectorize(..., sanitize=True)`` when a pass reports an
    error-severity diagnostic."""

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        lines = "\n".join(d.format() for d in self.diagnostics)
        super().__init__(
            f"{len(self.diagnostics)} sanitizer diagnostic(s):\n{lines}"
        )
