"""TransVal: Alive2-style translation validation for emitted programs.

VeGen's premise is that target semantics written once (pseudocode ->
bitvector formulas -> VIDL, §6.1) can *generate* a vectorizer; this module
closes the loop by using the same semantics layer to *verify* the
vectorizer's output.  For one :class:`VectorizationResult` it proves,
statically, that the emitted vector program computes the same thing as the
(canonicalized) scalar input:

1. **Scalar symbolic execution** — run the scalar IR over
   :mod:`repro.bitvector` expressions instead of concrete values.  Memory
   is exact: every address is a (buffer argument, constant offset) pair
   (restrict pointers + constant-offset ``gep``, see
   ``ir.instructions.GEPInst``), so the heap is a flat map from location
   to expression with store-to-load forwarding.
2. **Vector symbolic execution** — run the emitted program lane-by-lane,
   executing each compute instruction through its VIDL description
   (mirroring :mod:`repro.machine.exec`, but over expressions).  Both
   executions share one pool of initial-memory variables, so a location
   neither side wrote reads back as the *same* free variable.
3. **Goal discharge** — for every stored location (and the return value)
   prove the two sides' expressions equal, in escalating tiers:

   * *structural*: ``bitvector.simplify`` both sides, canonicalize
     commutative operand order (hash-consed, local to the validator — the
     global simplifier's output is frozen by the serialized target
     artifact), compare for syntactic identity;
   * *known-bits*: fold comparisons and selects decided by the
     :mod:`repro.analysis.dataflow` known-bits domain (this is what
     discharges saturation clamps that provably cannot clip), then
     re-compare;
   * *enumeration*: when the goal's free variables total at most
     ``enum_bits`` bits, exhaustively evaluate both sides with
     ``bitvector.eval`` over every assignment — a complete proof;
   * *sampling*: otherwise check deterministic corner + random
     assignments.  This tier only ever *validates* (status ``sampled``),
     never proves; the report and counters say which tier closed each
     goal.

Undefined behaviour follows Alive2's refinement direction: assignments on
which the *scalar* side is undefined (shift amount >= width, division by
zero) are excluded, while the vector side raising on a scalar-defined
assignment is a bug.  Symbolically, both sides use the clamping SMT-LIB
shift semantics, which agree with the scalar interpreter on every
scalar-defined input.
"""

from __future__ import annotations

import itertools
import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dataflow import (
    KnownBits,
    kb_add,
    kb_and,
    kb_ashr_const,
    kb_lshr_const,
    kb_not,
    kb_or,
    kb_sext,
    kb_shl_const,
    kb_trunc,
    kb_xor,
    kb_zext,
)
from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.manager import AnalysisPass, AnalysisUnit
from repro.bitvector.eval import BVEvalError, evaluate
from repro.bitvector.expr import (
    BVBinary,
    BVCast,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVOps,
    BVUnary,
    BVVar,
    bv_const,
    bv_sext,
    bv_trunc,
    bv_zext,
    free_variables,
)
from repro.bitvector.simplify import _Simplifier
from repro.ir.instructions import (
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    Opcode,
    RetInst,
    SelectInst,
    StoreInst,
)
from repro.ir.values import Argument, Constant, Value
from repro.obs.counters import NULL_COUNTERS
from repro.utils.fp import float_to_bits
from repro.utils.intmath import to_signed
from repro.vidl.ast import OpConst, OpExpr, OpNode, OpParam, Operation

#: Recursion headroom for deep expression DAGs (reduction chains).
_RECURSION_LIMIT = 100_000

_CAST_OPS = frozenset(
    {"sext", "zext", "trunc", "fpext", "fptrunc", "sitofp", "fptosi"}
)

#: Goal statuses, ordered strongest-first.
PROVED_STRUCTURAL = "proved-structural"
PROVED_KNOWNBITS = "proved-knownbits"
PROVED_ENUM = "proved-enum"
SAMPLED = "sampled"
FAILED = "failed"

_PROVED = frozenset({PROVED_STRUCTURAL, PROVED_KNOWNBITS, PROVED_ENUM})


@dataclass
class TransValConfig:
    """Validator knobs.

    ``enum_bits`` bounds the exhaustive tier: a goal is enumerated only
    when its free variables total at most this many bits (2^enum_bits
    evaluations).  ``samples`` is the budget for the sampling tier;
    ``seed`` makes it deterministic.
    """

    enum_bits: int = 12
    samples: int = 64
    seed: int = 0xC0FFEE


@dataclass
class GoalResult:
    """Outcome of one equivalence goal (a stored location or the return
    value)."""

    location: str
    status: str
    detail: str = ""

    @property
    def proved(self) -> bool:
        return self.status in _PROVED


@dataclass
class TransValReport:
    """Everything one validation run established."""

    function: str
    status: str  # 'proved' | 'validated' | 'failed'
    goals: List[GoalResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status != FAILED

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for goal in self.goals:
            out[goal.status] = out.get(goal.status, 0) + 1
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "status": self.status,
            "goals": [
                {"location": g.location, "status": g.status,
                 **({"detail": g.detail} if g.detail else {})}
                for g in self.goals
            ],
        }

    def diagnostics(self, pass_name: str = "transval") -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for goal in self.goals:
            if goal.status == FAILED:
                out.append(Diagnostic(
                    ERROR, pass_name,
                    f"{self.function}: {goal.location}",
                    f"scalar/vector mismatch: {goal.detail}"
                    if goal.detail else "scalar/vector mismatch",
                ))
            elif goal.status == SAMPLED:
                out.append(Diagnostic(
                    WARNING, pass_name,
                    f"{self.function}: {goal.location}",
                    f"equivalence validated by sampling only "
                    f"({goal.detail})" if goal.detail else
                    "equivalence validated by sampling only",
                ))
        return out


class TranslationValidationError(RuntimeError):
    """Raised by the VerifyPass when validation finds a miscompile."""

    def __init__(self, report: TransValReport):
        self.report = report
        failed = [g for g in report.goals if g.status == FAILED]
        lines = [f"translation validation failed for {report.function}:"]
        for goal in failed:
            suffix = f" ({goal.detail})" if goal.detail else ""
            lines.append(f"  {goal.location}: {goal.status}{suffix}")
        super().__init__("\n".join(lines))


class _SetupError(RuntimeError):
    """Symbolic execution itself went wrong (malformed program)."""


# -- shared symbolic memory ----------------------------------------------------


class _Memory:
    """One pool of initial-memory variables shared by both executions.

    Locations are ``(buffer argument, element offset)``; distinct
    arguments never alias (restrict semantics, ``ir.dag._may_alias``).
    """

    def __init__(self) -> None:
        self._initial: Dict[Tuple[int, int], BVVar] = {}
        self._names: Dict[Tuple[int, int], str] = {}

    def initial(self, base: Argument, offset: int, width: int) -> BVVar:
        key = (id(base), offset)
        var = self._initial.get(key)
        if var is None:
            var = BVVar(f"{base.name}[{offset}]", width)
            self._initial[key] = var
        return var


class _MemorySide:
    """One execution's view: its own writes over the shared initial pool."""

    def __init__(self, memory: _Memory) -> None:
        self._memory = memory
        self.writes: Dict[Tuple[int, int], BVExpr] = {}
        self.locations: Dict[Tuple[int, int], Tuple[Argument, int]] = {}

    def read(self, base: Argument, offset: int, width: int) -> BVExpr:
        stored = self.writes.get((id(base), offset))
        if stored is not None:
            return stored  # store-to-load forwarding
        return self._memory.initial(base, offset, width)

    def write(self, base: Argument, offset: int, expr: BVExpr) -> None:
        self.writes[(id(base), offset)] = expr
        self.locations[(id(base), offset)] = (base, offset)


def _const_bits(constant: Constant) -> BVConst:
    ty = constant.type
    if ty.is_float:
        return bv_const(float_to_bits(constant.value, ty.width), ty.width)
    return bv_const(constant.value, ty.width)


def _get_expr(env: Dict[int, object], value: Value):
    if isinstance(value, Constant):
        return _const_bits(value)
    try:
        return env[id(value)]
    except KeyError:
        raise _SetupError(f"use of uncomputed value {value!r}")


# -- scalar symbolic execution -------------------------------------------------


def _sym_execute(inst: Instruction, env: Dict[int, object],
                 memory: _MemorySide):
    """Symbolic mirror of ``ir.interp._execute`` over one instruction."""
    op = inst.opcode
    if isinstance(inst, GEPInst):
        base, offset = _get_expr(env, inst.base)
        return (base, offset + inst.offset)
    if isinstance(inst, LoadInst):
        base, offset = _get_expr(env, inst.pointer)
        return memory.read(base, offset, inst.type.width)
    if isinstance(inst, StoreInst):
        base, offset = _get_expr(env, inst.pointer)
        memory.write(base, offset, _get_expr(env, inst.value))
        return None
    if isinstance(inst, (ICmpInst, FCmpInst)):
        lhs = _get_expr(env, inst.operands[0])
        rhs = _get_expr(env, inst.operands[1])
        return BVBinary(inst.pred, lhs, rhs)
    if isinstance(inst, SelectInst):
        return BVIte(
            _get_expr(env, inst.condition),
            _get_expr(env, inst.true_value),
            _get_expr(env, inst.false_value),
        )
    if op == Opcode.FNEG:
        return BVUnary("fneg", _get_expr(env, inst.operands[0]))
    if len(inst.operands) == 2 and not inst.type.is_void:
        lhs = _get_expr(env, inst.operands[0])
        rhs = _get_expr(env, inst.operands[1])
        return BVBinary(op, lhs, rhs)
    if len(inst.operands) == 1:  # casts
        value = _get_expr(env, inst.operands[0])
        return _sym_cast(op, value, inst.type.width)
    raise _SetupError(f"cannot symbolically execute {inst!r}")


def _sym_cast(op: str, value: BVExpr, dest_width: int) -> BVExpr:
    if op == Opcode.SEXT:
        return bv_sext(value, dest_width)
    if op == Opcode.ZEXT:
        return bv_zext(value, dest_width)
    if op == Opcode.TRUNC:
        return bv_trunc(value, dest_width)
    if op in ("fpext", "fptrunc", "sitofp", "fptosi"):
        return BVCast(op, value, dest_width)
    raise _SetupError(f"unknown cast {op}")


def _run_scalar(function, memory: _Memory
                ) -> Tuple[_MemorySide, Optional[BVExpr]]:
    """Symbolically execute the scalar function; return its memory side
    and (symbolic) return value."""
    side = _MemorySide(memory)
    env: Dict[int, object] = {}
    for arg in function.args:
        if arg.type.is_pointer:
            env[id(arg)] = (arg, 0)
        else:
            env[id(arg)] = BVVar(arg.name, arg.type.width)
    for inst in function.entry:
        if isinstance(inst, RetInst):
            if inst.return_value is not None:
                return side, _get_expr(env, inst.return_value)
            return side, None
        result = _sym_execute(inst, env, side)
        if inst.has_result:
            env[id(inst)] = result
    return side, None


# -- vector symbolic execution -------------------------------------------------


def _sym_op_eval(operation: Operation, args: Sequence[BVExpr]) -> BVExpr:
    """Symbolic mirror of ``vidl.interp.execute_operation``."""
    if len(args) != len(operation.params):
        raise _SetupError(
            f"operation takes {len(operation.params)} args, "
            f"got {len(args)}"
        )
    return _sym_op_expr(operation.expr, list(args))


def _sym_op_expr(expr: OpExpr, args: List[BVExpr]) -> BVExpr:
    if isinstance(expr, OpParam):
        value = args[expr.index]
        if expr.type.is_integer and value.width != expr.type.width:
            # Mirror the concrete interpreter's masking of parameters.
            if value.width > expr.type.width:
                return bv_trunc(value, expr.type.width)
            return bv_zext(value, expr.type.width)
        return value
    if isinstance(expr, OpConst):
        if expr.type.is_float:
            return bv_const(float_to_bits(expr.value, expr.type.width),
                            expr.type.width)
        return bv_const(expr.value, expr.type.width)
    assert isinstance(expr, OpNode)
    op = expr.opcode
    operands = [_sym_op_expr(o, args) for o in expr.operands]
    if op == "select":
        cond = operands[0]
        if cond.width != 1:
            cond = BVBinary("ne", cond, bv_const(0, cond.width))
        return BVIte(cond, operands[1], operands[2])
    if op in ("icmp", "fcmp"):
        return BVBinary(expr.attr, operands[0], operands[1])
    if op == "fneg":
        return BVUnary("fneg", operands[0])
    if op in _CAST_OPS:
        return _sym_cast(op, operands[0], expr.type.width)
    return BVBinary(op, operands[0], operands[1])


class _VectorExec:
    """Symbolic mirror of the vector-program interpreter."""

    def __init__(self, program, memory: _Memory) -> None:
        self.program = program
        self.side = _MemorySide(memory)
        self.scalar_env: Dict[int, object] = {}
        self.vector_env: Dict[int, List[Optional[BVExpr]]] = {}

    def run(self) -> None:
        function = self.program.function
        for arg in function.args:
            if arg.type.is_pointer:
                self.scalar_env[id(arg)] = (arg, 0)
            else:
                self.scalar_env[id(arg)] = BVVar(arg.name, arg.type.width)
        for node in self.program.nodes:
            self._step(node)

    def _step(self, node) -> None:
        from repro.vectorizer.vector_ir import (
            VExtract,
            VGather,
            VLoad,
            VOp,
            VScalar,
            VStore,
        )

        if isinstance(node, VLoad):
            width = node.elem_type.width
            self.vector_env[id(node)] = [
                self.side.read(node.base, node.offset + lane, width)
                for lane in range(node.lanes)
            ]
            return
        if isinstance(node, VGather):
            self.vector_env[id(node)] = [
                self._resolve_source(source) for source in node.sources
            ]
            return
        if isinstance(node, VOp):
            try:
                inputs = [self.vector_env[id(op)] for op in node.operands]
            except KeyError:
                raise _SetupError(
                    f"{node.describe()}: operand not computed before use"
                )
            self.vector_env[id(node)] = self._execute_vop(node, inputs)
            return
        if isinstance(node, VStore):
            lanes = self.vector_env.get(id(node.source))
            if lanes is None or len(lanes) != node.lanes:
                raise _SetupError(
                    f"{node.describe()}: source lane count mismatch"
                )
            for lane, expr in enumerate(lanes):
                if expr is None:
                    raise _SetupError(
                        f"{node.describe()}: stores undef lane {lane}"
                    )
                self.side.write(node.base, node.offset + lane, expr)
            return
        if isinstance(node, VExtract):
            lanes = self.vector_env.get(id(node.source))
            if lanes is None:
                raise _SetupError(
                    f"{node.describe()}: source not computed before use"
                )
            expr = lanes[node.lane]
            if expr is None:
                raise _SetupError(
                    f"{node.describe()}: extracts undef lane {node.lane}"
                )
            self.scalar_env[id(node.value)] = expr
            return
        if isinstance(node, VScalar):
            inst = node.inst
            if isinstance(inst, RetInst):
                return
            result = _sym_execute(inst, self.scalar_env, self.side)
            if inst.has_result:
                self.scalar_env[id(inst)] = result
            return
        raise _SetupError(f"unknown vector node {node!r}")

    def _execute_vop(self, node, inputs) -> List[Optional[BVExpr]]:
        desc = node.inst.desc
        output: List[Optional[BVExpr]] = []
        for lane_index, lane_op in enumerate(desc.lane_ops):
            if not node.live_lanes[lane_index]:
                output.append(None)
                continue
            args = []
            for ref in lane_op.bindings:
                value = inputs[ref.input_index][ref.lane_index]
                if value is None:
                    raise _SetupError(
                        f"{desc.name}: live lane {lane_index} consumes "
                        f"an undef input lane"
                    )
                args.append(value)
            output.append(_sym_op_eval(lane_op.operation, args))
        return output

    def _resolve_source(self, source) -> Optional[BVExpr]:
        if source.kind == "undef":
            return None
        if source.kind == "const":
            return _const_bits(source.value)
        if source.kind == "lane":
            lanes = self.vector_env.get(id(source.node))
            if lanes is None:
                raise _SetupError(
                    "gather reads a vector not computed before use"
                )
            return lanes[source.lane]
        if source.kind == "scalar":
            return _get_expr(self.scalar_env, source.value)
        raise _SetupError(f"unknown element source {source.kind!r}")


# -- canonicalization (local to the validator) ---------------------------------


_SWAPPED_ICMP = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
}


def _relax_strict(op: str, rhs: BVConst
                  ) -> Optional[Tuple[str, BVConst]]:
    """Rewrite a strict comparison against a constant as non-strict
    (``sgt x C`` == ``sge x (C+1)`` for C < signed max), so the scalar
    IR's select clamps and VIDL's saturation formulas canonicalize to
    the same form."""
    width = rhs.width
    value = rhs.value
    smax = (1 << (width - 1)) - 1
    smin = 1 << (width - 1)  # unsigned encoding of the signed minimum
    umax = (1 << width) - 1
    if op == "sgt" and value != smax:
        return "sge", bv_const(value + 1, width)
    if op == "slt" and value != smin:
        return "sle", bv_const(value - 1, width)
    if op == "ugt" and value != umax:
        return "uge", bv_const(value + 1, width)
    if op == "ult" and value != 0:
        return "ule", bv_const(value - 1, width)
    return None


class _Canon:
    """Hash-consing canonicalizer: sorts commutative operand pairs.

    Keeping this *out* of ``bitvector.simplify`` is deliberate: the
    global simplifier's output is serialized into the target artifact
    (``repro gen --check`` asserts byte-identical regeneration), so its
    normal form is frozen.  Here structurally identical subtrees get the
    same intern id, commutative operands are ordered by id, and goal
    equality becomes an integer comparison.
    """

    def __init__(self) -> None:
        self._ids: Dict[Tuple, int] = {}
        self._memo: Dict[int, Tuple[BVExpr, int]] = {}
        self._keep: List[BVExpr] = []  # pin originals so ids stay valid

    def canon(self, expr: BVExpr) -> Tuple[BVExpr, int]:
        cached = self._memo.get(id(expr))
        if cached is not None:
            return cached
        result = self._rebuild(expr)
        self._memo[id(expr)] = result
        self._keep.append(expr)
        return result

    def _intern(self, key: Tuple, expr: BVExpr) -> Tuple[BVExpr, int]:
        node_id = self._ids.get(key)
        if node_id is None:
            node_id = len(self._ids)
            self._ids[key] = node_id
        return expr, node_id

    def _rebuild(self, expr: BVExpr) -> Tuple[BVExpr, int]:
        if isinstance(expr, BVVar):
            return self._intern(("var", expr.name, expr.width), expr)
        if isinstance(expr, BVConst):
            return self._intern(("const", expr.value, expr.width), expr)
        if isinstance(expr, BVExtract):
            operand, oid = self.canon(expr.operand)
            rebuilt = expr if operand is expr.operand else \
                BVExtract(expr.hi, expr.lo, operand)
            return self._intern(("extract", expr.hi, expr.lo, oid),
                                rebuilt)
        if isinstance(expr, BVConcat):
            parts = [self.canon(p) for p in expr.parts]
            rebuilt = expr if all(p is orig for (p, _), orig in
                                  zip(parts, expr.parts)) else \
                BVConcat([p for p, _ in parts])
            return self._intern(
                ("concat",) + tuple(pid for _, pid in parts), rebuilt)
        if isinstance(expr, BVUnary):
            operand, oid = self.canon(expr.operand)
            rebuilt = expr if operand is expr.operand else \
                BVUnary(expr.op, operand)
            return self._intern(("unary", expr.op, oid), rebuilt)
        if isinstance(expr, BVCast):
            operand, oid = self.canon(expr.operand)
            rebuilt = expr if operand is expr.operand else \
                BVCast(expr.op, operand, expr.width)
            return self._intern(("cast", expr.op, expr.width, oid),
                                rebuilt)
        if isinstance(expr, BVIte):
            cond, cid = self.canon(expr.cond)
            on_true, tid = self.canon(expr.on_true)
            on_false, fid = self.canon(expr.on_false)
            rebuilt = expr if (cond is expr.cond and
                               on_true is expr.on_true and
                               on_false is expr.on_false) else \
                BVIte(cond, on_true, on_false)
            return self._intern(("ite", cid, tid, fid), rebuilt)
        assert isinstance(expr, BVBinary)
        lhs, lid = self.canon(expr.lhs)
        rhs, rid = self.canon(expr.rhs)
        op = expr.op
        if (op in BVOps.COMMUTATIVE or op in ("eq", "ne")) and rid < lid:
            lhs, lid, rhs, rid = rhs, rid, lhs, lid
        if op in BVOps.ICMP:
            if isinstance(lhs, BVConst) and not isinstance(rhs, BVConst):
                lhs, lid, rhs, rid = rhs, rid, lhs, lid
                op = _SWAPPED_ICMP[op]
            if isinstance(rhs, BVConst):
                relaxed = _relax_strict(op, rhs)
                if relaxed is not None:
                    op, rhs = relaxed
                    rhs, rid = self.canon(rhs)
        rebuilt = expr if (op == expr.op and lhs is expr.lhs and
                           rhs is expr.rhs) else BVBinary(op, lhs, rhs)
        return self._intern(("binary", op, lid, rid), rebuilt)


# -- known-bits over bitvector expressions -------------------------------------


def expr_known_bits(expr: BVExpr,
                    memo: Optional[Dict[int, KnownBits]] = None
                    ) -> KnownBits:
    """Known-bits abstraction of a bitvector expression.

    Reuses the :mod:`repro.analysis.dataflow` transfer functions — the
    same lattice the scalar lints run on, applied to formulas instead of
    instructions.  Float-interpreting ops are *top*.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    result = _expr_kb(expr, memo)
    memo[id(expr)] = result
    return result


def _expr_kb(expr: BVExpr, memo: Dict[int, KnownBits]) -> KnownBits:
    top = KnownBits.top(expr.width)
    if isinstance(expr, BVConst):
        return KnownBits.from_const(expr.value, expr.width)
    if isinstance(expr, BVVar):
        return top
    if isinstance(expr, BVExtract):
        kb = expr_known_bits(expr.operand, memo)
        low = (1 << expr.width) - 1
        return KnownBits((kb.zeros >> expr.lo) & low,
                         (kb.ones >> expr.lo) & low, expr.width)
    if isinstance(expr, BVConcat):
        zeros, ones = 0, 0
        for part in expr.parts:  # MSB first
            kb = expr_known_bits(part, memo)
            zeros = (zeros << part.width) | kb.zeros
            ones = (ones << part.width) | kb.ones
        return KnownBits(zeros, ones, expr.width)
    if isinstance(expr, BVIte):
        cond = expr_known_bits(expr.cond, memo)
        if cond.constant_value() == 1:
            return expr_known_bits(expr.on_true, memo)
        if cond.constant_value() == 0:
            return expr_known_bits(expr.on_false, memo)
        return expr_known_bits(expr.on_true, memo).join(
            expr_known_bits(expr.on_false, memo))
    if isinstance(expr, BVUnary):
        kb = expr_known_bits(expr.operand, memo)
        if expr.op == "not":
            return kb_not(kb)
        if expr.op == "neg":
            return kb_add(kb_not(kb), KnownBits.from_const(1, kb.width))
        return top  # fneg
    if isinstance(expr, BVCast):
        kb = expr_known_bits(expr.operand, memo)
        if expr.op == "zext":
            return kb_zext(kb, expr.width)
        if expr.op == "sext":
            return kb_sext(kb, expr.width)
        return top  # float casts
    assert isinstance(expr, BVBinary)
    op = expr.op
    if op in BVOps.ICMP:
        decided = _decide_icmp(op, expr_known_bits(expr.lhs, memo),
                               expr_known_bits(expr.rhs, memo))
        if decided is not None:
            return KnownBits.from_const(decided, 1)
        return KnownBits.top(1)
    if op in BVOps.FCMP or op in BVOps.FLOAT_BINARY:
        return top
    lhs = expr_known_bits(expr.lhs, memo)
    rhs = expr_known_bits(expr.rhs, memo)
    if op == "and":
        return kb_and(lhs, rhs)
    if op == "or":
        return kb_or(lhs, rhs)
    if op == "xor":
        return kb_xor(lhs, rhs)
    if op == "add":
        return kb_add(lhs, rhs)
    if op == "sub":
        return kb_add(kb_add(lhs, kb_not(rhs)),
                      KnownBits.from_const(1, lhs.width))
    if op in ("shl", "lshr", "ashr"):
        amount = rhs.constant_value()
        if amount is None:
            return top
        if op == "shl":
            return kb_shl_const(lhs, amount)
        if op == "lshr":
            return kb_lshr_const(lhs, amount)
        return kb_ashr_const(lhs, amount)
    if op == "trunc":  # not produced, but keep total
        return kb_trunc(lhs, expr.width)
    return top


def _signed_bounds(kb: KnownBits) -> Tuple[int, int]:
    """Attainable signed [min, max] consistent with the known bits."""
    width = kb.width
    sign = 1 << (width - 1)
    if kb.zeros & sign:
        return kb.umin(), kb.umax()
    if kb.ones & sign:
        return to_signed(kb.umin(), width), to_signed(kb.umax(), width)
    return to_signed(kb.ones | sign, width), kb.umax() & ~sign


def _decide_icmp(op: str, lhs: KnownBits,
                 rhs: KnownBits) -> Optional[int]:
    """Decide a comparison from known bits, or None."""
    if op in ("eq", "ne"):
        if lhs.is_constant and rhs.is_constant:
            equal = lhs.ones == rhs.ones
            return int(equal) if op == "eq" else int(not equal)
        if (lhs.ones & rhs.zeros) or (lhs.zeros & rhs.ones):
            return 0 if op == "eq" else 1  # provably different
        return None
    if op in ("ult", "ule", "ugt", "uge"):
        lo_l, hi_l = lhs.umin(), lhs.umax()
        lo_r, hi_r = rhs.umin(), rhs.umax()
    elif op in ("slt", "sle", "sgt", "sge"):
        lo_l, hi_l = _signed_bounds(lhs)
        lo_r, hi_r = _signed_bounds(rhs)
    else:
        return None
    if op in ("ugt", "uge", "sgt", "sge"):
        lo_l, hi_l, lo_r, hi_r = lo_r, hi_r, lo_l, hi_l
        op = {"ugt": "ult", "uge": "ule",
              "sgt": "slt", "sge": "sle"}[op]
    strict = op in ("ult", "slt")
    if (hi_l < lo_r) or (not strict and hi_l == lo_r):
        return 1
    if (lo_l > hi_r) or (strict and lo_l == hi_r):
        return 0
    return None


def _knownbits_fold(expr: BVExpr, memo: Dict[int, KnownBits],
                    rebuild_memo: Dict[int, BVExpr]) -> BVExpr:
    """Replace comparisons/selects decided by known bits with constants.

    This is the tier that discharges saturation clamps the dataflow
    facts prove can never fire (e.g. ``ite(sgt(sext(x16), 32767), ...)``
    is always the pass-through arm).
    """
    cached = rebuild_memo.get(id(expr))
    if cached is not None:
        return cached
    kb = expr_known_bits(expr, memo)
    value = kb.constant_value()
    if value is not None:
        result: BVExpr = bv_const(value, expr.width)
    elif isinstance(expr, BVIte):
        cond_kb = expr_known_bits(expr.cond, memo)
        if cond_kb.constant_value() == 1:
            result = _knownbits_fold(expr.on_true, memo, rebuild_memo)
        elif cond_kb.constant_value() == 0:
            result = _knownbits_fold(expr.on_false, memo, rebuild_memo)
        else:
            result = BVIte(
                _knownbits_fold(expr.cond, memo, rebuild_memo),
                _knownbits_fold(expr.on_true, memo, rebuild_memo),
                _knownbits_fold(expr.on_false, memo, rebuild_memo),
            )
    elif isinstance(expr, BVBinary):
        result = BVBinary(
            expr.op,
            _knownbits_fold(expr.lhs, memo, rebuild_memo),
            _knownbits_fold(expr.rhs, memo, rebuild_memo),
        )
    elif isinstance(expr, BVUnary):
        result = BVUnary(
            expr.op, _knownbits_fold(expr.operand, memo, rebuild_memo))
    elif isinstance(expr, BVCast):
        result = BVCast(
            expr.op, _knownbits_fold(expr.operand, memo, rebuild_memo),
            expr.width)
    elif isinstance(expr, BVExtract):
        result = BVExtract(
            expr.hi, expr.lo,
            _knownbits_fold(expr.operand, memo, rebuild_memo))
    elif isinstance(expr, BVConcat):
        result = BVConcat([
            _knownbits_fold(p, memo, rebuild_memo) for p in expr.parts])
    else:
        result = expr
    rebuild_memo[id(expr)] = result
    return result


# -- the prover ----------------------------------------------------------------


class _Prover:
    """Discharges equivalence goals in escalating tiers."""

    def __init__(self, config: TransValConfig, counters) -> None:
        self.config = config
        self.counters = counters
        self.simplifier = _Simplifier()
        self.canon = _Canon()
        self._kb_memo: Dict[int, KnownBits] = {}

    def prove(self, location: str, scalar: BVExpr,
              vector: BVExpr, goal_index: int) -> GoalResult:
        self.counters.inc("transval.goals")
        if scalar.width != vector.width:
            self.counters.inc("transval.failures")
            return GoalResult(
                location, FAILED,
                f"width mismatch: scalar i{scalar.width} vs vector "
                f"i{vector.width}",
            )
        # Tier 1: simplify + commutative canonicalization -> identity.
        lhs = self.simplifier.run(scalar)
        rhs = self.simplifier.run(vector)
        lhs, lid = self.canon.canon(lhs)
        rhs, rid = self.canon.canon(rhs)
        if lid == rid:
            self.counters.inc("transval.proved.structural")
            return GoalResult(location, PROVED_STRUCTURAL)
        # Tier 2: fold known-bits-decided clamps, then retry identity.
        fold_memo: Dict[int, BVExpr] = {}
        folded_l = _knownbits_fold(lhs, self._kb_memo, fold_memo)
        folded_r = _knownbits_fold(rhs, self._kb_memo, fold_memo)
        if folded_l is not lhs or folded_r is not rhs:
            _, lid2 = self.canon.canon(self.simplifier.run(folded_l))
            _, rid2 = self.canon.canon(self.simplifier.run(folded_r))
            if lid2 == rid2:
                self.counters.inc("transval.proved.knownbits")
                return GoalResult(location, PROVED_KNOWNBITS)
        # Tier 3: exhaustive enumeration over small free-variable spaces.
        variables = self._goal_variables(lhs, rhs)
        total_bits = sum(v.width for v in variables)
        if total_bits <= self.config.enum_bits:
            return self._enumerate(location, lhs, rhs, variables)
        # Tier 4: deterministic sampling (validates, never proves).
        return self._sample(location, lhs, rhs, variables, goal_index)

    @staticmethod
    def _goal_variables(lhs: BVExpr, rhs: BVExpr) -> List[BVVar]:
        seen = {}
        for var in free_variables(lhs) + free_variables(rhs):
            seen.setdefault((var.name, var.width), var)
        return sorted(seen.values(), key=lambda v: (v.name, v.width))

    def _check(self, lhs: BVExpr, rhs: BVExpr,
               env: Dict[str, int]) -> Optional[str]:
        """Check one assignment.  None = agree (or scalar-UB, which is
        excluded); a string describes a mismatch."""
        try:
            expected = evaluate(lhs, env)
        except BVEvalError:
            return None  # scalar side undefined: assignment excluded
        try:
            actual = evaluate(rhs, env)
        except BVEvalError as exc:
            return f"vector side undefined where scalar is not ({exc})"
        if expected != actual:
            binding = ", ".join(
                f"{name}={value:#x}" for name, value in sorted(env.items())
            )
            return (f"counterexample {binding}: scalar={expected:#x} "
                    f"vector={actual:#x}")
        return None

    def _enumerate(self, location: str, lhs: BVExpr, rhs: BVExpr,
                   variables: List[BVVar]) -> GoalResult:
        self.counters.inc("transval.enumerated")
        spaces = [range(1 << v.width) for v in variables]
        names = [v.name for v in variables]
        for point in itertools.product(*spaces):
            env = dict(zip(names, point))
            mismatch = self._check(lhs, rhs, env)
            if mismatch is not None:
                self.counters.inc("transval.failures")
                return GoalResult(location, FAILED, mismatch)
        self.counters.inc("transval.proved.enum")
        total_bits = sum(v.width for v in variables)
        return GoalResult(location, PROVED_ENUM,
                          f"exhausted {total_bits} free bits")

    def _sample(self, location: str, lhs: BVExpr, rhs: BVExpr,
                variables: List[BVVar], goal_index: int) -> GoalResult:
        rng = random.Random(self.config.seed + goal_index)
        corners = (0, 1, None, None)  # None slots filled per-width below
        checked = 0
        for sample in range(self.config.samples):
            env: Dict[str, int] = {}
            for var in variables:
                all_ones = (1 << var.width) - 1
                if sample < len(corners):
                    choice = corners[sample]
                    if choice is None:
                        choice = all_ones if sample == 2 \
                            else 1 << (var.width - 1)
                    env[var.name] = choice & all_ones
                else:
                    env[var.name] = rng.getrandbits(var.width)
            mismatch = self._check(lhs, rhs, env)
            if mismatch is not None:
                self.counters.inc("transval.failures")
                return GoalResult(location, FAILED, mismatch)
            checked += 1
        self.counters.inc("transval.sampled")
        return GoalResult(location, SAMPLED, f"{checked} samples")


# -- entry points --------------------------------------------------------------


def validate_program(function, program,
                     config: Optional[TransValConfig] = None,
                     counters=None) -> TransValReport:
    """Prove a vector program equivalent to its scalar function."""
    if config is None:
        config = TransValConfig()
    if counters is None:
        counters = NULL_COUNTERS
    counters.inc("transval.runs")
    fn_name = getattr(function, "name", "<function>")
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, _RECURSION_LIMIT))
    try:
        return _validate(function, program, config, counters, fn_name)
    finally:
        sys.setrecursionlimit(old_limit)


def _validate(function, program, config, counters,
              fn_name: str) -> TransValReport:
    memory = _Memory()
    try:
        scalar_side, scalar_ret = _run_scalar(function, memory)
        vector = _VectorExec(program, memory)
        vector.run()
    except _SetupError as exc:
        counters.inc("transval.failures")
        return TransValReport(fn_name, FAILED, [
            GoalResult("<program>", FAILED, str(exc)),
        ])

    prover = _Prover(config, counters)
    goals: List[GoalResult] = []
    locations = dict(scalar_side.locations)
    locations.update(vector.side.locations)
    ordered = sorted(
        locations.items(), key=lambda kv: (kv[1][0].name, kv[1][1]))
    for index, (key, (base, offset)) in enumerate(ordered):
        label = f"{base.name}[{offset}]"
        scalar_expr = scalar_side.writes.get(key)
        vector_expr = vector.side.writes.get(key)
        if scalar_expr is None:
            counters.inc("transval.goals")
            counters.inc("transval.failures")
            goals.append(GoalResult(
                label, FAILED,
                "vector program stores a location the scalar never "
                "writes"))
            continue
        if vector_expr is None:
            counters.inc("transval.goals")
            counters.inc("transval.failures")
            goals.append(GoalResult(
                label, FAILED,
                "scalar store has no counterpart in the vector program"))
            continue
        goals.append(prover.prove(label, scalar_expr, vector_expr, index))

    ret_inst = None
    for inst in function.entry:
        if isinstance(inst, RetInst):
            ret_inst = inst
            break
    if ret_inst is not None and ret_inst.return_value is not None:
        value = ret_inst.return_value
        try:
            vector_ret = _get_expr(vector.scalar_env, value)
        except _SetupError:
            counters.inc("transval.goals")
            counters.inc("transval.failures")
            goals.append(GoalResult(
                "<return>", FAILED,
                "return value not computed by the vector program"))
            vector_ret = None
        if vector_ret is not None and scalar_ret is not None:
            goals.append(prover.prove("<return>", scalar_ret,
                                      vector_ret, len(goals)))

    if any(g.status == FAILED for g in goals):
        status = FAILED
    elif any(g.status == SAMPLED for g in goals):
        status = "validated"
    else:
        status = "proved"
    return TransValReport(fn_name, status, goals)


def validate_result(result, config: Optional[TransValConfig] = None,
                    counters=None) -> TransValReport:
    """Validate one :class:`VectorizationResult` (scalar function vs its
    emitted program — ``result.function`` *is* ``program.function``, the
    canonicalized working copy)."""
    if counters is None:
        counters = getattr(result, "counters", None) or NULL_COUNTERS
    return validate_program(result.function, result.program,
                            config=config, counters=counters)


class TransVal(AnalysisPass):
    """Translation validation as an :class:`AnalysisManager` pass.

    Reports ERROR diagnostics for disproved goals and WARNINGs for goals
    only validated by sampling; proves are silent.
    """

    name = "transval"

    def __init__(self, config: Optional[TransValConfig] = None):
        self.config = config

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        if unit.program is None:
            return []
        report = validate_program(unit.function, unit.program,
                                  config=self.config)
        return report.diagnostics(pass_name=self.name)
