"""IRLint: scalar-IR lint built on the structural verifier.

Extends :mod:`repro.ir.verifier` from first-failure exceptions to
diagnostics: every structural violation is collected, plus checks the
verifier historically did not make — load/store type agreement with the
pointed-to buffer element type, and dead stores (a store overwritten by a
later store to the same location with no intervening read, which the
frontend's store-elimination should have removed)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.manager import AnalysisPass, AnalysisUnit


class IRLint(AnalysisPass):
    name = "irlint"

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        from repro.ir.verifier import iter_violations

        function = unit.function
        diagnostics = [
            self.diag(ERROR, location, message)
            for location, message in iter_violations(function)
        ]
        diagnostics.extend(self._check_memory_types(function))
        diagnostics.extend(self._check_dead_stores(function))
        return diagnostics

    def _check_memory_types(self, function) -> List[Diagnostic]:
        from repro.ir.instructions import LoadInst, StoreInst
        from repro.ir.types import PointerType

        diagnostics: List[Diagnostic] = []
        for inst in function.entry:
            if isinstance(inst, LoadInst):
                pointee = self._pointee(inst.pointer)
                if pointee is not None and inst.type != pointee:
                    diagnostics.append(self.diag(
                        ERROR,
                        f"{function.name}: {inst.short_name()}",
                        f"load of {inst.type} from {pointee} buffer",
                    ))
            elif isinstance(inst, StoreInst):
                pointee = self._pointee(inst.pointer)
                if pointee is not None and inst.value.type != pointee:
                    diagnostics.append(self.diag(
                        ERROR,
                        f"{function.name}: store {inst.short_name()}",
                        f"store of {inst.value.type} into {pointee} "
                        f"buffer",
                    ))
        return diagnostics

    @staticmethod
    def _pointee(pointer):
        from repro.ir.types import PointerType

        ptr_type = getattr(pointer, "type", None)
        if isinstance(ptr_type, PointerType):
            return ptr_type.pointee
        return None

    def _check_dead_stores(self, function) -> List[Diagnostic]:
        from repro.ir.instructions import (
            LoadInst,
            StoreInst,
            pointer_base_and_offset,
        )

        diagnostics: List[Diagnostic] = []
        live: Dict[Tuple[int, int], object] = {}
        for inst in function.entry:
            if isinstance(inst, LoadInst):
                base, offset = pointer_base_and_offset(inst.pointer)
                if base is None:
                    live.clear()  # unknown read: everything may be used
                else:
                    live.pop((id(base), offset), None)
            elif isinstance(inst, StoreInst):
                base, offset = pointer_base_and_offset(inst.pointer)
                if base is None:
                    live.clear()
                    continue
                key = (id(base), offset)
                previous = live.get(key)
                if previous is not None:
                    diagnostics.append(self.diag(
                        WARNING,
                        f"{function.name}: store "
                        f"{previous.short_name()}",
                        f"dead store: overwritten by "
                        f"{inst.short_name()} with no intervening read",
                    ))
                live[key] = inst
        return diagnostics
