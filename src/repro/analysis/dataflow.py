"""Forward/backward dataflow over the scalar IR, plus the lints it powers.

Three classic abstract domains, computed in one pass each over the single
basic block (the IR is straight-line SSA, so every analysis converges in
exactly one sweep — no fixpoint iteration needed):

* **known bits** (:class:`KnownBits`) — for every integer value, which
  bits are provably 0 and which provably 1.  The lattice element is a
  pair of masks ``(zeros, ones)`` with ``zeros & ones == 0``; *top* is
  ``(0, 0)`` (nothing known), and a fully-known element is a constant.
* **value range** (:class:`ValueRange`) — an unsigned interval
  ``[umin, umax]``; *top* is ``[0, 2^w - 1]``.
* **demanded bits** — a backward analysis: which bits of each value can
  influence any observable output (a store, the return value, or an
  address).  Stores, returns, and unmodelled users demand every bit;
  ``trunc``/``shl``/``and``-by-constant shrink the demand.

These feed two consumers:

* :class:`DataflowLint` — an :class:`~repro.analysis.manager.AnalysisPass`
  reporting undefined shift amounts (scalar IR shifts with an
  out-of-range amount are UB — the interpreter raises), narrowing
  conversions that provably/possibly drop demanded non-zero bits, and
  overlapping or statically out-of-bounds vector memory accesses in the
  emitted program;
* the TransVal translation validator (:mod:`repro.analysis.transval`),
  which reuses the :class:`KnownBits` domain over *bitvector
  expressions* to close equivalence goals without enumeration and to
  justify its SMT-style (clamping) shift semantics on the scalar side:
  a function whose shifts the range analysis proves in-bounds has no
  shift UB, so clamping and LLVM semantics agree on every input.

Lattice contracts (documented for DESIGN.md):

* ``KnownBits.join`` is the lattice join (union of uncertainty):
  ``join(a, b)`` keeps exactly the bits on which ``a`` and ``b`` agree.
* Transfer functions are *sound over-approximations*: the concrete
  result of an operation on any concretization of the inputs is a
  concretization of the transferred element.  Exactness is only
  guaranteed for the bitwise ops, shifts by constants, and casts.
* ``ValueRange`` transfer functions must never wrap: any operation that
  may overflow returns *top* rather than a wrapped interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.manager import AnalysisPass, AnalysisUnit
from repro.ir.instructions import (
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    Opcode,
    RetInst,
    SelectInst,
    StoreInst,
)
from repro.ir.values import Argument, Constant, Value
from repro.utils.intmath import mask


def _all_ones(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class KnownBits:
    """Which bits of a ``width``-bit value are provably 0 / provably 1.

    Invariant: ``zeros & ones == 0`` and both masks fit in ``width``.
    """

    zeros: int
    ones: int
    width: int

    def __post_init__(self) -> None:
        if self.zeros & self.ones:
            raise ValueError("contradictory known bits")

    @classmethod
    def top(cls, width: int) -> "KnownBits":
        return cls(0, 0, width)

    @classmethod
    def from_const(cls, value: int, width: int) -> "KnownBits":
        value = mask(value, width)
        return cls(_all_ones(width) ^ value, value, width)

    @property
    def known_mask(self) -> int:
        return self.zeros | self.ones

    @property
    def is_constant(self) -> bool:
        return self.known_mask == _all_ones(self.width)

    def constant_value(self) -> Optional[int]:
        return self.ones if self.is_constant else None

    def umin(self) -> int:
        """Smallest unsigned value consistent with the known bits."""
        return self.ones

    def umax(self) -> int:
        """Largest unsigned value consistent with the known bits."""
        return _all_ones(self.width) ^ self.zeros

    def join(self, other: "KnownBits") -> "KnownBits":
        """Lattice join: keep only the bits both elements agree on."""
        assert self.width == other.width
        return KnownBits(self.zeros & other.zeros,
                         self.ones & other.ones, self.width)

    def __repr__(self) -> str:
        digits = []
        for bit in range(self.width - 1, -1, -1):
            sel = 1 << bit
            digits.append("1" if self.ones & sel
                          else "0" if self.zeros & sel else "?")
        return f"KnownBits({''.join(digits)})"


# -- known-bits transfer functions (shared with transval's BVExpr walk) --


def kb_and(a: KnownBits, b: KnownBits) -> KnownBits:
    return KnownBits(a.zeros | b.zeros, a.ones & b.ones, a.width)


def kb_or(a: KnownBits, b: KnownBits) -> KnownBits:
    return KnownBits(a.zeros & b.zeros, a.ones | b.ones, a.width)


def kb_xor(a: KnownBits, b: KnownBits) -> KnownBits:
    known = a.known_mask & b.known_mask
    value = (a.ones ^ b.ones) & known
    return KnownBits(known ^ value, value, a.width)


def kb_not(a: KnownBits) -> KnownBits:
    return KnownBits(a.ones, a.zeros, a.width)


def kb_add(a: KnownBits, b: KnownBits) -> KnownBits:
    """Carry-aware addition: bits below the first unknown carry stay
    known."""
    width = a.width
    zeros, ones = 0, 0
    carry_known, carry = True, 0
    for bit in range(width):
        sel = 1 << bit
        a_known = bool(a.known_mask & sel)
        b_known = bool(b.known_mask & sel)
        if a_known and b_known and carry_known:
            a_bit = 1 if a.ones & sel else 0
            b_bit = 1 if b.ones & sel else 0
            total = a_bit + b_bit + carry
            if total & 1:
                ones |= sel
            else:
                zeros |= sel
            carry = total >> 1
        else:
            carry_known = False
    return KnownBits(zeros, ones, width)


def kb_shl_const(a: KnownBits, amount: int) -> KnownBits:
    width = a.width
    if amount >= width:
        return KnownBits.from_const(0, width)
    zeros = (mask(a.zeros << amount, width)) | _all_ones(amount)
    ones = mask(a.ones << amount, width)
    return KnownBits(zeros & ~ones, ones, width)


def kb_lshr_const(a: KnownBits, amount: int) -> KnownBits:
    width = a.width
    if amount >= width:
        return KnownBits.from_const(0, width)
    high = mask(_all_ones(amount) << (width - amount), width)
    zeros = (a.zeros >> amount) | high
    ones = a.ones >> amount
    return KnownBits(zeros & ~ones, ones, width)


def kb_ashr_const(a: KnownBits, amount: int) -> KnownBits:
    width = a.width
    if amount >= width:
        amount = width - 1
    sign = 1 << (width - 1)
    zeros = a.zeros >> amount
    ones = a.ones >> amount
    high = mask(_all_ones(amount) << (width - amount), width)
    if a.zeros & sign:
        zeros |= high
    elif a.ones & sign:
        ones |= high
    return KnownBits(zeros & ~ones, ones, width)


def kb_zext(a: KnownBits, width: int) -> KnownBits:
    high = _all_ones(width) ^ _all_ones(a.width)
    return KnownBits(a.zeros | high, a.ones, width)


def kb_sext(a: KnownBits, width: int) -> KnownBits:
    sign = 1 << (a.width - 1)
    high = _all_ones(width) ^ _all_ones(a.width)
    if a.zeros & sign:
        return KnownBits(a.zeros | high, a.ones, width)
    if a.ones & sign:
        return KnownBits(a.zeros, a.ones | high, width)
    return KnownBits(a.zeros & ~high & _all_ones(width),
                     a.ones & _all_ones(width), width)


def kb_trunc(a: KnownBits, width: int) -> KnownBits:
    low = _all_ones(width)
    return KnownBits(a.zeros & low, a.ones & low, width)


@dataclass(frozen=True)
class ValueRange:
    """An unsigned interval ``[umin, umax]`` over ``width``-bit values."""

    umin: int
    umax: int
    width: int

    def __post_init__(self) -> None:
        if not 0 <= self.umin <= self.umax <= _all_ones(self.width):
            raise ValueError(
                f"bad range [{self.umin}, {self.umax}] at width "
                f"{self.width}"
            )

    @classmethod
    def top(cls, width: int) -> "ValueRange":
        return cls(0, _all_ones(width), width)

    @classmethod
    def from_const(cls, value: int, width: int) -> "ValueRange":
        value = mask(value, width)
        return cls(value, value, width)

    @property
    def is_constant(self) -> bool:
        return self.umin == self.umax

    def join(self, other: "ValueRange") -> "ValueRange":
        assert self.width == other.width
        return ValueRange(min(self.umin, other.umin),
                          max(self.umax, other.umax), self.width)

    def __repr__(self) -> str:
        return f"ValueRange([{self.umin}, {self.umax}], i{self.width})"


def _range_add(a: ValueRange, b: ValueRange) -> ValueRange:
    hi = a.umax + b.umax
    if hi > _all_ones(a.width):
        return ValueRange.top(a.width)  # may wrap: give up, never wrap
    return ValueRange(a.umin + b.umin, hi, a.width)


def _range_mul(a: ValueRange, b: ValueRange) -> ValueRange:
    hi = a.umax * b.umax
    if hi > _all_ones(a.width):
        return ValueRange.top(a.width)
    return ValueRange(a.umin * b.umin, hi, a.width)


def _range_from_known(kb: KnownBits) -> ValueRange:
    return ValueRange(kb.umin(), kb.umax(), kb.width)


class DataflowFacts:
    """Per-value facts for one function: the result of
    :func:`compute_dataflow`.

    Lookups take IR values; non-integer values (floats, pointers) report
    *top*/fully-demanded, so callers never need to special-case them.
    """

    def __init__(self, function) -> None:
        self.function = function
        self._known: Dict[int, KnownBits] = {}
        self._range: Dict[int, ValueRange] = {}
        self._demanded: Dict[int, int] = {}

    def known_bits(self, value: Value) -> Optional[KnownBits]:
        """Known bits of an integer value (None for floats/pointers)."""
        if not value.type.is_integer:
            return None
        cached = self._known.get(id(value))
        if cached is not None:
            return cached
        if isinstance(value, Constant):
            return KnownBits.from_const(value.value, value.type.width)
        return KnownBits.top(value.type.width)

    def value_range(self, value: Value) -> Optional[ValueRange]:
        """Unsigned range of an integer value (None for floats etc.)."""
        if not value.type.is_integer:
            return None
        cached = self._range.get(id(value))
        if cached is not None:
            return cached
        if isinstance(value, Constant):
            return ValueRange.from_const(value.value, value.type.width)
        return ValueRange.top(value.type.width)

    def demanded_bits(self, value: Value) -> int:
        """Mask of bits that can influence an observable output."""
        if not value.type.is_integer:
            return -1
        width = value.type.width
        return self._demanded.get(id(value), _all_ones(width))


def compute_dataflow(function) -> DataflowFacts:
    """Run all three analyses over one straight-line function."""
    facts = DataflowFacts(function)
    instructions: List[Instruction] = list(function.entry)

    # Forward sweep: known bits + ranges in instruction order (operands
    # always precede their users in a single-block SSA function).
    for inst in instructions:
        if not inst.type.is_integer:
            continue
        kb, vr = _transfer(inst, facts)
        # Each domain can sharpen the other: a known-bits element bounds
        # the range, and a constant range pins every bit.
        kb_from_range = None
        if vr.is_constant:
            kb_from_range = KnownBits.from_const(vr.umin, vr.width)
        if kb_from_range is not None:
            kb = KnownBits(kb.zeros | kb_from_range.zeros,
                           kb.ones | kb_from_range.ones, kb.width) \
                if not (kb.zeros & kb_from_range.ones
                        or kb.ones & kb_from_range.zeros) else kb
        range_from_kb = _range_from_known(kb)
        vr = ValueRange(max(vr.umin, range_from_kb.umin),
                        min(vr.umax, range_from_kb.umax), vr.width) \
            if max(vr.umin, range_from_kb.umin) <= \
            min(vr.umax, range_from_kb.umax) else vr
        facts._known[id(inst)] = kb
        facts._range[id(inst)] = vr

    # Backward sweep: demanded bits in reverse instruction order.
    demanded: Dict[int, int] = {}

    def demand(value: Value, bits: int) -> None:
        if isinstance(value, (Constant, Argument)):
            return
        if not value.type.is_integer:
            return
        bits &= _all_ones(value.type.width)
        demanded[id(value)] = demanded.get(id(value), 0) | bits

    for inst in reversed(instructions):
        if isinstance(inst, StoreInst):
            demand(inst.value, -1)
            continue
        if isinstance(inst, RetInst):
            if inst.return_value is not None:
                demand(inst.return_value, -1)
            continue
        if isinstance(inst, (GEPInst, LoadInst)):
            continue  # addresses are structural, not bit-level
        if not inst.has_result:
            continue
        own = demanded.get(id(inst), 0)
        if own == 0:
            continue  # dead: demands nothing of its operands
        _demand_operands(inst, own, demand, facts)

    facts._demanded = demanded
    return facts


def _kb_of(value: Value, facts: DataflowFacts) -> KnownBits:
    kb = facts.known_bits(value)
    assert kb is not None
    return kb


def _vr_of(value: Value, facts: DataflowFacts) -> ValueRange:
    vr = facts.value_range(value)
    assert vr is not None
    return vr


def _transfer(inst: Instruction,
              facts: DataflowFacts) -> Tuple[KnownBits, ValueRange]:
    """Known-bits + range transfer for one integer-typed instruction."""
    op = inst.opcode
    width = inst.type.width
    top = (KnownBits.top(width), ValueRange.top(width))

    if isinstance(inst, LoadInst):
        return top
    if isinstance(inst, ICmpInst):
        return KnownBits.top(1), ValueRange(0, 1, 1)
    if isinstance(inst, SelectInst):
        kb = _kb_of(inst.true_value, facts).join(
            _kb_of(inst.false_value, facts))
        vr = _vr_of(inst.true_value, facts).join(
            _vr_of(inst.false_value, facts))
        return kb, vr
    if op in (Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC):
        src = inst.operands[0]
        kb = _kb_of(src, facts)
        if op == Opcode.ZEXT:
            out = kb_zext(kb, width)
            return out, _range_from_known(out)
        if op == Opcode.SEXT:
            out = kb_sext(kb, width)
            return out, _range_from_known(out)
        out = kb_trunc(kb, width)
        return out, _range_from_known(out)
    if op == Opcode.FPTOSI:
        return top

    if len(inst.operands) != 2 or not inst.operands[0].type.is_integer:
        return top
    a, b = inst.operands
    ka, kb_ = _kb_of(a, facts), _kb_of(b, facts)
    ra, rb = _vr_of(a, facts), _vr_of(b, facts)

    if op == Opcode.AND:
        out = kb_and(ka, kb_)
        return out, _range_from_known(out)
    if op == Opcode.OR:
        out = kb_or(ka, kb_)
        return out, _range_from_known(out)
    if op == Opcode.XOR:
        out = kb_xor(ka, kb_)
        return out, _range_from_known(out)
    if op == Opcode.ADD:
        out = kb_add(ka, kb_)
        vr = _range_add(ra, rb)
        return out, vr
    if op == Opcode.SUB:
        # a - b == a + ~b + 1; reuse the carry-aware adder.
        out = kb_add(kb_add(ka, kb_not(kb_)),
                     KnownBits.from_const(1, width))
        return out, ValueRange.top(width)
    if op == Opcode.MUL:
        return KnownBits.top(width), _range_mul(ra, rb)
    if op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        amount = kb_.constant_value()
        if amount is None and rb.is_constant:
            amount = rb.umin
        if amount is None:
            return top
        if op == Opcode.SHL:
            out = kb_shl_const(ka, amount)
        elif op == Opcode.LSHR:
            out = kb_lshr_const(ka, amount)
        else:
            out = kb_ashr_const(ka, amount)
        return out, _range_from_known(out)
    if op == Opcode.UDIV and rb.umin > 0:
        return KnownBits.top(width), ValueRange(
            ra.umin // rb.umax, ra.umax // rb.umin, width)
    if op == Opcode.UREM and rb.umin > 0:
        return KnownBits.top(width), ValueRange(
            0, min(ra.umax, rb.umax - 1), width)
    return top


def _demand_operands(inst: Instruction, own: int, demand, facts) -> None:
    """Push this instruction's demanded bits onto its operands."""
    op = inst.opcode
    if op == Opcode.TRUNC:
        demand(inst.operands[0], own)
        return
    if op == Opcode.ZEXT or op == Opcode.SEXT:
        src = inst.operands[0]
        src_mask = _all_ones(src.type.width)
        wanted = own & src_mask
        if op == Opcode.SEXT and own & ~src_mask:
            wanted |= 1 << (src.type.width - 1)  # sign bit replicated
        demand(src, wanted)
        return
    if op in (Opcode.AND, Opcode.OR):
        a, b = inst.operands
        ka, kb_ = facts.known_bits(a), facts.known_bits(b)
        if op == Opcode.AND:
            # Bits the other side zeroes are never demanded.
            demand(a, own & ~(kb_.zeros if kb_ else 0))
            demand(b, own & ~(ka.zeros if ka else 0))
        else:
            demand(a, own & ~(kb_.ones if kb_ else 0))
            demand(b, own & ~(ka.ones if ka else 0))
        return
    if op == Opcode.XOR:
        demand(inst.operands[0], own)
        demand(inst.operands[1], own)
        return
    if op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        a, b = inst.operands
        kb_ = facts.known_bits(b)
        amount = kb_.constant_value() if kb_ else None
        width = inst.type.width
        if amount is not None and amount < width:
            if op == Opcode.SHL:
                demand(a, own >> amount)
            elif op == Opcode.LSHR:
                demand(a, mask(own << amount, width))
            else:
                wanted = mask(own << amount, width)
                if own >> (width - amount or width):
                    wanted |= 1 << (width - 1)
                demand(a, wanted)
        else:
            demand(a, -1)
        demand(b, -1)
        return
    if isinstance(inst, SelectInst):
        demand(inst.condition, -1)
        demand(inst.true_value, own)
        demand(inst.false_value, own)
        return
    if op == Opcode.ADD or op == Opcode.SUB:
        # Low bits depend only on low operand bits: demand up to the
        # highest demanded bit.
        high = own.bit_length()
        wanted = _all_ones(high) if high else 0
        demand(inst.operands[0], wanted)
        demand(inst.operands[1], wanted)
        return
    for operand in inst.operands:
        demand(operand, -1)


# -- the lints ----------------------------------------------------------


class DataflowLint(AnalysisPass):
    """Dataflow-powered lints over the scalar IR and the emitted program.

    * ``shift``: a shift whose amount can reach the operand width is UB
      in the scalar IR (ERROR when it *always* is, WARNING when it may).
    * ``narrow``: a ``trunc`` that provably drops demanded non-zero bits
      (WARNING — often intentional wrap-around, never silent).
    * ``memory``: vector loads/stores with statically negative offsets
      (ERROR) and overlapping same-buffer vector store ranges (ERROR:
      each scalar store is covered exactly once, so overlap means two
      packs write the same element).
    """

    name = "dataflow"

    def run(self, unit: AnalysisUnit) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        function = unit.function
        fn_name = getattr(function, "name", "<function>")
        facts = compute_dataflow(function)

        for inst in function.entry:
            if inst.opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
                diagnostics.extend(
                    self._check_shift(fn_name, inst, facts))
            elif inst.opcode == Opcode.TRUNC:
                diagnostics.extend(
                    self._check_narrow(fn_name, inst, facts))

        if unit.program is not None:
            diagnostics.extend(self._check_memory(fn_name, unit.program))
        return diagnostics

    def _check_shift(self, fn_name: str, inst: Instruction,
                     facts: DataflowFacts) -> List[Diagnostic]:
        amount = inst.operands[1]
        vr = facts.value_range(amount)
        if vr is None:
            return []
        width = inst.type.width
        location = f"{fn_name}: {inst.opcode} {inst.short_name()}"
        if vr.umin >= width:
            return [self.diag(
                ERROR, location,
                f"shift amount is always >= {width} (range "
                f"[{vr.umin}, {vr.umax}]): undefined in the scalar IR",
            )]
        if vr.umax >= width:
            return [self.diag(
                WARNING, location,
                f"shift amount may reach {vr.umax} >= width {width}: "
                f"undefined for those inputs",
            )]
        return []

    def _check_narrow(self, fn_name: str, inst: Instruction,
                      facts: DataflowFacts) -> List[Diagnostic]:
        src = inst.operands[0]
        kb = facts.known_bits(src)
        if kb is None:
            return []
        dest_width = inst.type.width
        dropped = kb.ones >> dest_width
        if dropped and facts.demanded_bits(inst):
            location = f"{fn_name}: trunc {inst.short_name()}"
            return [self.diag(
                WARNING, location,
                f"narrowing i{src.type.width} -> i{dest_width} drops "
                f"bits that are provably non-zero (overflow on narrow)",
            )]
        return []

    def _check_memory(self, fn_name: str, program) -> List[Diagnostic]:
        from repro.vectorizer.vector_ir import VLoad, VStore

        diagnostics: List[Diagnostic] = []
        store_ranges: List[Tuple[str, int, int, str]] = []
        for node in program.nodes:
            if isinstance(node, (VLoad, VStore)):
                kind = "vload" if isinstance(node, VLoad) else "vstore"
                location = (f"{fn_name}: {kind} {node.base.name}"
                            f"[{node.offset}]")
                if node.offset < 0:
                    diagnostics.append(self.diag(
                        ERROR, location,
                        f"statically out-of-bounds: negative element "
                        f"offset {node.offset}",
                    ))
                if isinstance(node, VStore):
                    lo, hi = node.offset, node.offset + node.lanes - 1
                    for (base, plo, phi, ploc) in store_ranges:
                        if base == node.base.name and \
                                lo <= phi and plo <= hi:
                            diagnostics.append(self.diag(
                                ERROR, location,
                                f"overlaps earlier vector store "
                                f"{ploc}: two packs write "
                                f"{base}[{max(lo, plo)}..."
                                f"{min(hi, phi)}]",
                            ))
                    store_ranges.append(
                        (node.base.name, lo, hi, location))
        return diagnostics
