"""LLVM-new-PM-style pass infrastructure for the compile-time phase.

The vectorizer's stages — canonicalize, reassociate, pack selection,
codegen, sanitizers — are registered :class:`Pass` objects composed
into a :class:`PassPipeline` running over one :class:`PipelineState`,
with an :class:`AnalysisCache` keeping the dependence graph, match
table, and scalar cost alive across passes that preserve them.

``vectorize()`` is a thin wrapper over :func:`default_passes`;
``repro vectorize --passes <list>`` runs custom pipelines built with
:func:`build_pipeline`.
"""

from repro.passes.library import (
    PASS_REGISTRY,
    CanonicalizePass,
    CodegenPass,
    PackSelectionPass,
    ReassociatePass,
    SanitizePass,
    ScalarCostPass,
    VerifyPass,
    available_passes,
    build_pipeline,
    default_passes,
)
from repro.passes.manager import (
    ALL,
    ANALYSIS_BUILDERS,
    AnalysisCache,
    Pass,
    PassPipeline,
    PipelineState,
)

__all__ = [
    "ALL",
    "ANALYSIS_BUILDERS",
    "AnalysisCache",
    "Pass",
    "PassPipeline",
    "PipelineState",
    "PASS_REGISTRY",
    "CanonicalizePass",
    "CodegenPass",
    "PackSelectionPass",
    "ReassociatePass",
    "SanitizePass",
    "ScalarCostPass",
    "VerifyPass",
    "available_passes",
    "build_pipeline",
    "default_passes",
]
