"""The registered pipeline passes and the default pipeline.

Each stage of ``vectorize()`` is one registered pass; the default
pipeline reproduces the historical monolithic entry point exactly
(byte-identical packs, program text, and costs — enforced by the
differential suite), and ``repro vectorize --passes <list>`` composes
custom pipelines from the same registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.passes.manager import ALL, Pass, PassPipeline, PipelineState


class CanonicalizePass(Pass):
    """Worklist canonicalization of the scalar input (§6)."""

    name = "canonicalize"
    span_name = "canonicalize"
    preserves = frozenset()  # rewrites the function

    def run(self, state: PipelineState) -> None:
        from repro.patterns.canonicalize import canonicalize_function

        canonicalize_function(state.function, counters=state.counters)


class ReassociatePass(Pass):
    """Reduction-chain balancing (clang -O3 / -ffast-math behaviour).

    Mirrors the monolithic pipeline: when input canonicalization is on,
    the rebalanced function is re-canonicalized inside the same span.
    """

    name = "reassociate"
    span_name = "reassociate"
    preserves = frozenset()

    def __init__(self, canonicalize_after: bool = True):
        self.canonicalize_after = canonicalize_after

    def run(self, state: PipelineState) -> None:
        from repro.patterns.canonicalize import canonicalize_function
        from repro.patterns.reassociate import reassociate_function

        reassociate_function(state.function)
        if self.canonicalize_after:
            canonicalize_function(state.function, counters=state.counters)


class PackSelectionPass(Pass):
    """Beam search over the Figure 9 recurrence (§5)."""

    name = "select-packs"
    span_name = "select_packs"
    requires = ("context",)
    preserves = ALL

    def run(self, state: PipelineState) -> None:
        from repro.vectorizer.beam import select_packs

        state.packs, state.estimated_cost = select_packs(state.context)


class ScalarCostPass(Pass):
    """Model cost of the canonicalized scalar function (§6.2)."""

    name = "scalar-cost"
    span_name = "cost_model"
    requires = ("context",)
    preserves = ALL

    def run(self, state: PipelineState) -> None:
        state.scalar_cost = state.analyses.get("scalar_cost")


class CodegenPass(Pass):
    """Lowering plus the scalar-fallback cost gate (§4.5).

    Manages its own spans: the monolithic pipeline emitted a
    ``codegen`` + ``cost_model`` span pair per attempt (vectorized,
    then scalar fallback), and the bench trajectory's phase keys keep
    that shape.
    """

    name = "codegen"
    span_name = None
    requires = ("context",)
    preserves = ALL

    def run(self, state: PipelineState) -> None:
        from repro.machine.model import program_cost
        from repro.vectorizer.codegen import generate
        from repro.vectorizer.pipeline import scalar_program

        ctx = state.context
        tracer = state.tracer
        model = ctx.cost_model
        if state.scalar_cost is None:
            state.scalar_cost = state.analyses.get("scalar_cost")
        packs = state.packs
        program = None
        cost = None
        if packs:
            with tracer.span("codegen"):
                program = generate(ctx, packs)
            with tracer.span("cost_model"):
                cost = program_cost(program, model)
            # Fall back to scalar when the emitted program models slower
            # than the scalar original (the search estimate is a
            # heuristic).
            if cost.total >= state.scalar_cost:
                packs = []
        if not packs:
            with tracer.span("codegen"):
                program = scalar_program(state.function)
            with tracer.span("cost_model"):
                cost = program_cost(program, model)
        state.packs = packs
        state.program = program
        state.cost = cost


class SanitizePass(Pass):
    """The ``repro.analysis`` sanitizer suite over the emitted program.

    Raises :class:`repro.analysis.SanitizerError` on any
    error-severity diagnostic, mirroring ``vectorize(sanitize=True)``.
    """

    name = "sanitize"
    span_name = "sanitize"
    preserves = ALL

    def run(self, state: PipelineState) -> None:
        # Imported lazily: repro.analysis imports vectorizer modules.
        from repro.analysis import SanitizerError, analyze_result, \
            errors_only
        from repro.vectorizer.pipeline import VectorizationResult

        result = VectorizationResult(
            function=state.function,
            program=state.program,
            packs=state.packs,
            scalar_cost=state.scalar_cost or 0.0,
            cost=state.cost,
            estimated_cost=state.estimated_cost,
            target=state.target,
        )
        state.diagnostics = analyze_result(result, target=state.target)
        errors = errors_only(state.diagnostics)
        state.counters.inc("sanitizer.diagnostics",
                           len(state.diagnostics))
        state.counters.inc("sanitizer.errors", len(errors))
        state.counters.inc("sanitizer.warnings",
                           len(state.diagnostics) - len(errors))
        if errors:
            raise SanitizerError(errors)


class VerifyPass(Pass):
    """TransVal translation validation of the emitted program (opt-in).

    Statically proves the vector program equivalent to the canonicalized
    scalar input through the same VIDL semantics it was selected with
    (see :mod:`repro.analysis.transval`).  Stores the report on
    ``state.verification``, appends its diagnostics, and raises
    :class:`repro.analysis.transval.TranslationValidationError` when any
    goal is disproved.
    """

    name = "verify"
    span_name = "verify"
    preserves = ALL

    def __init__(self, config=None):
        self.config = config  # transval.TransValConfig or None

    def run(self, state: PipelineState) -> None:
        # Imported lazily: repro.analysis imports vectorizer modules.
        from repro.analysis.transval import (
            FAILED,
            TranslationValidationError,
            validate_program,
        )

        if state.program is None:
            return  # nothing emitted yet (custom pipeline without codegen)
        report = validate_program(
            state.function, state.program,
            config=self.config, counters=state.counters,
        )
        state.verification = report
        state.diagnostics = list(state.diagnostics) + report.diagnostics()
        if report.status == FAILED:
            raise TranslationValidationError(report)


#: Registry: pass name -> factory.  Factories take the pipeline options
#: relevant to them (today only the reassociate/canonicalize coupling).
PASS_REGISTRY: Dict[str, Callable[..., Pass]] = {
    CanonicalizePass.name: CanonicalizePass,
    ReassociatePass.name: ReassociatePass,
    PackSelectionPass.name: PackSelectionPass,
    ScalarCostPass.name: ScalarCostPass,
    CodegenPass.name: CodegenPass,
    SanitizePass.name: SanitizePass,
    VerifyPass.name: VerifyPass,
}


def available_passes() -> List[str]:
    """Names accepted by :func:`build_pipeline`."""
    return sorted(PASS_REGISTRY)


def default_passes(canonicalize_input: bool = True,
                   reassociate: bool = False,
                   sanitize: bool = False,
                   verify: bool = False) -> List[Pass]:
    """The default pipeline: the historical ``vectorize()`` stages."""
    passes: List[Pass] = []
    if canonicalize_input:
        passes.append(CanonicalizePass())
    if reassociate:
        passes.append(
            ReassociatePass(canonicalize_after=canonicalize_input)
        )
    passes.extend([
        PackSelectionPass(),
        ScalarCostPass(),
        CodegenPass(),
    ])
    if sanitize:
        passes.append(SanitizePass())
    if verify:
        passes.append(VerifyPass())
    return passes


def build_pipeline(names: Sequence[str],
                   canonicalize_input: bool = True) -> PassPipeline:
    """Build a custom pipeline from registry names.

    Unknown names raise ``KeyError`` listing the registry.  A pipeline
    without ``codegen`` leaves ``state.program``/``state.cost`` unset;
    the session completes such runs with an implicit codegen stage so
    every run still yields a costed program.
    """
    passes: List[Pass] = []
    for name in names:
        factory = PASS_REGISTRY.get(name)
        if factory is None:
            raise KeyError(
                f"unknown pass {name!r}; available: "
                f"{', '.join(available_passes())}"
            )
        if factory is ReassociatePass:
            passes.append(
                ReassociatePass(canonicalize_after=canonicalize_input)
            )
        else:
            passes.append(factory())
    return PassPipeline(passes)
