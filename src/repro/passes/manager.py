"""The pass manager: typed passes, a pipeline, and an analysis cache.

Modeled on LLVM's new pass manager, scaled to this codebase: a
:class:`Pass` transforms (or annotates) one :class:`PipelineState`, a
:class:`PassPipeline` runs an ordered list of passes, and an
:class:`AnalysisCache` keeps derived analyses (the vectorization
context with its dependence graph and match table, the scalar cost)
alive across passes that declare they preserve them — and invalidates
them across passes that do not.

Observability falls out of the structure: the pipeline opens one obs
span per pass (named by the pass, so the existing ``SPAN_NAMES``
contract is unchanged) and counts pass runs and analysis reuse /
invalidation under the ``passes.*`` counters.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, \
    Tuple, Union

from repro.ir.function import Function
from repro.machine.costs import CostModel
from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.trace import NULL_TRACER
from repro.target.isa import TargetDesc
from repro.vectorizer.context import VectorizationContext, VectorizerConfig

#: A pass's ``preserves`` declaration: a set of analysis keys, or the
#: sentinel :data:`ALL` meaning "everything stays valid".
ALL = "all"
Preserved = Union[str, FrozenSet[str]]


class PipelineState:
    """Everything one vectorization run carries between passes.

    The state owns the *working copy* of the function (passes mutate it
    freely), the resolved target, the knobs, and the products each
    stage deposits: selected packs, the emitted program, and model
    costs.  Derived analyses live in :attr:`analyses`.
    """

    def __init__(self, function: Function, target: TargetDesc,
                 cost_model: Optional[CostModel] = None,
                 config: Optional[VectorizerConfig] = None,
                 tracer=None, counters: Optional[Counters] = None):
        self.function = function
        self.target = target
        self.cost_model = cost_model or CostModel()
        self.config = config or VectorizerConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.counters = counters if counters is not None else NULL_COUNTERS
        self.analyses = AnalysisCache(self)
        # Stage products (filled in by the passes that compute them).
        self.packs: List = []
        self.estimated_cost: float = 0.0
        self.program = None
        self.scalar_cost: Optional[float] = None
        self.cost = None
        self.diagnostics: List = []
        self.verification = None  # transval.TransValReport when verifying

    @property
    def context(self) -> VectorizationContext:
        """The (cached) vectorization context analysis."""
        return self.analyses.get("context")


# -- analyses ----------------------------------------------------------

def _build_context(state: PipelineState) -> VectorizationContext:
    # Constructing the context builds the dependence graph and match
    # table, each under its own obs span.
    return VectorizationContext(
        state.function, state.target, state.cost_model, state.config,
        tracer=state.tracer, counters=state.counters,
    )


def _build_dep_graph(state: PipelineState):
    return state.analyses.get("context").dep_graph


def _build_match_table(state: PipelineState):
    return state.analyses.get("context").match_table


def _build_scalar_cost(state: PipelineState) -> float:
    from repro.machine.model import scalar_function_cost

    model = state.analyses.get("context").cost_model
    return scalar_function_cost(state.function, model)


#: Analysis key -> builder.  Keys are the invalidation granularity.
ANALYSIS_BUILDERS: Dict[str, Callable[[PipelineState], object]] = {
    "context": _build_context,
    "dep_graph": _build_dep_graph,
    "match_table": _build_match_table,
    "scalar_cost": _build_scalar_cost,
}


class AnalysisCache:
    """Caches derived analyses across passes, with invalidation.

    ``get(key)`` builds on miss and reuses on hit; after each pass the
    pipeline calls :meth:`retain` with the pass's ``preserves`` set,
    dropping everything else.  The dependence graph and match table are
    sub-analyses of the context (they share its lifetime) but have
    their own keys so passes can name what they preserve precisely.
    """

    def __init__(self, state: PipelineState):
        # Weakly referencing the owning state breaks the
        # PipelineState <-> AnalysisCache reference cycle.  The cache is
        # only ever reached *through* the state, so the referent cannot
        # disappear while a method runs — and without the cycle a
        # finished run's entire analysis graph (context, dependence
        # bitsets, estimator memos) is reclaimed by refcounting instead
        # of lingering until a full gen-2 cyclic collection.
        self._state_ref = weakref.ref(state)
        self._cache: Dict[str, object] = {}

    @property
    def _state(self) -> PipelineState:
        state = self._state_ref()
        if state is None:
            raise ReferenceError(
                "AnalysisCache used after its PipelineState was collected"
            )
        return state

    def get(self, key: str):
        if key in self._cache:
            return self._cache[key]
        builder = ANALYSIS_BUILDERS.get(key)
        if builder is None:
            raise KeyError(f"unknown analysis {key!r}; known: "
                           f"{', '.join(sorted(ANALYSIS_BUILDERS))}")
        value = builder(self._state)
        self._cache[key] = value
        return value

    def ensure(self, key: str) -> None:
        """Materialize an analysis, counting reuse."""
        if key in self._cache:
            self._state.counters.inc("passes.analysis_reuses")
        else:
            self.get(key)

    def cached(self, key: str) -> bool:
        return key in self._cache

    def invalidate(self, key: str) -> None:
        self._cache.pop(key, None)

    def retain(self, preserved: Preserved) -> None:
        """Drop every cached analysis not in ``preserved``.

        Dropping the context also drops its sub-analyses: they are
        views into it and cannot outlive it.
        """
        if preserved == ALL:
            return
        keep = frozenset(preserved)
        if "context" not in keep:
            keep = keep - {"dep_graph", "match_table"}
        dropped = [key for key in self._cache if key not in keep]
        for key in dropped:
            del self._cache[key]
        if dropped:
            self._state.counters.inc("passes.analysis_invalidations",
                                     len(dropped))


# -- passes ------------------------------------------------------------


class Pass:
    """Base class for pipeline passes.

    Subclasses set:

    * ``name`` — the registry identifier (``repro vectorize --passes``);
    * ``span_name`` — the obs span the pipeline opens around ``run()``,
      or None when the pass manages its own spans;
    * ``requires`` — analysis keys the pipeline materializes *before*
      opening the pass's span (so analysis build time is attributed to
      the analysis spans, not the pass);
    * ``preserves`` — analysis keys still valid after the pass ran
      (:data:`ALL` for pure analysis/emission passes).
    """

    name: str = "<anonymous>"
    span_name: Optional[str] = None
    requires: Tuple[str, ...] = ()
    preserves: Preserved = frozenset()

    def run(self, state: PipelineState) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class PassPipeline:
    """An ordered pass list with analysis-aware execution."""

    def __init__(self, passes: Sequence[Pass]):
        self.passes: List[Pass] = list(passes)

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.passes]

    def run(self, state: PipelineState) -> PipelineState:
        for pass_ in self.passes:
            for key in pass_.requires:
                state.analyses.ensure(key)
            state.counters.inc("passes.runs")
            if pass_.span_name is not None:
                with state.tracer.span(pass_.span_name):
                    pass_.run(state)
            else:
                pass_.run(state)
            state.analyses.retain(pass_.preserves)
        return state

    def __repr__(self) -> str:
        return f"<PassPipeline [{', '.join(self.names)}]>"
