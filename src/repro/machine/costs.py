"""Cost model (§6.2).

The paper uses LLVM's cost model for ``C_insert``/``C_extract``, sets
``C_shuffle = 2``, and prices each vector instruction at its inverse
throughput scaled by two (the scaling keeps vector costs commensurate with
LLVM's scalar costs).  Our stand-in machine model does the same: scalar
costs approximate LLVM's x86 scalar cost table, vector instruction costs
come from the target description, and shuffles are classified so that
broadcasts and single-source permutes are cheaper than general two-source
shuffles (the special cases §6.2 mentions).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro.ir.instructions import Instruction, Opcode


#: Default per-opcode scalar costs (approximating LLVM's model: most ALU
#: ops are 1, divisions are expensive, address computation is free).
DEFAULT_SCALAR_COSTS: Dict[str, float] = {
    Opcode.ADD: 1.0, Opcode.SUB: 1.0, Opcode.MUL: 1.0,
    Opcode.SDIV: 8.0, Opcode.UDIV: 8.0, Opcode.SREM: 8.0, Opcode.UREM: 8.0,
    Opcode.AND: 1.0, Opcode.OR: 1.0, Opcode.XOR: 1.0,
    Opcode.SHL: 1.0, Opcode.LSHR: 1.0, Opcode.ASHR: 1.0,
    Opcode.FADD: 1.0, Opcode.FSUB: 1.0, Opcode.FMUL: 1.0, Opcode.FDIV: 8.0,
    Opcode.FNEG: 1.0,
    Opcode.SEXT: 1.0, Opcode.ZEXT: 1.0, Opcode.TRUNC: 1.0,
    Opcode.FPEXT: 1.0, Opcode.FPTRUNC: 1.0,
    Opcode.SITOFP: 1.0, Opcode.FPTOSI: 1.0,
    Opcode.ICMP: 1.0, Opcode.FCMP: 1.0, Opcode.SELECT: 1.0,
    Opcode.GEP: 0.0,
    Opcode.LOAD: 2.0, Opcode.STORE: 2.0,
    Opcode.RET: 0.0,
}


@dataclass(frozen=True)
class CostModel:
    """All cost parameters in one immutable bundle."""

    #: §5: data-movement parameters.  C_shuffle = 2 per §6.2.
    c_shuffle: float = 2.0
    c_insert: float = 1.0
    c_extract: float = 1.0
    #: Materializing a vector constant (folded to a constant-pool load).
    c_vector_const: float = 1.0
    #: Vector memory ops (roughly LLVM's cost-1-per-access, same as scalar).
    c_vector_load: float = 2.0
    c_vector_store: float = 2.0
    #: Cheap shuffle special cases (§6.2 overrides).
    c_broadcast: float = 1.0
    c_permute: float = 1.0
    c_two_source_shuffle: float = 2.0
    scalar_costs: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SCALAR_COSTS)
    )

    def scalar_cost(self, inst: Instruction) -> float:
        return self.scalar_costs.get(inst.opcode, 1.0)

    def with_params(self, **kwargs) -> "CostModel":
        """A copy with some parameters overridden (for ablations)."""
        return replace(self, **kwargs)


def classify_gather(elements: Sequence[object],
                    sources: Sequence[Optional[object]]) -> str:
    """Classify how a vector operand must be assembled.

    ``sources[i]`` identifies the producing pack of element ``i`` (None for
    scalar/constant elements).  Returns one of ``"exact"``, ``"broadcast"``,
    ``"permute"``, ``"two_source"``, ``"insert"``.
    """
    packs = {id(s) for s in sources if s is not None}
    distinct = {id(e) for e in elements}
    if len(distinct) == 1 and len(elements) > 1:
        return "broadcast"
    if len(packs) == 1 and all(s is not None for s in sources):
        return "permute"
    if len(packs) == 2 and all(s is not None for s in sources):
        return "two_source"
    return "insert"


def gather_cost(model: CostModel, kind: str, num_scalar: int = 0) -> float:
    """Cost of assembling a vector operand of the given gather class."""
    if kind == "exact":
        return 0.0
    if kind == "broadcast":
        return model.c_broadcast
    if kind == "permute":
        return model.c_permute
    if kind == "two_source":
        return model.c_two_source_shuffle
    return model.c_insert * max(1, num_scalar)
