"""Throughput-based machine model.

The paper evaluates on Xeon hardware; our stand-in predicts block cost as
the sum of per-node costs, with vector instructions priced at twice their
inverse throughput (§6.2) and virtual shuffles priced by shape.  Reported
"speedups" are ratios of model cycles, and "number of instructions" counts
emitted nodes — the same two metrics Figure 2 tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.machine.costs import CostModel, gather_cost
from repro.vectorizer.vector_ir import (
    VExtract,
    VGather,
    VLoad,
    VNode,
    VOp,
    VScalar,
    VStore,
    VectorProgram,
)


@dataclass
class ProgramCost:
    """Cost breakdown of one program."""

    total: float
    scalar: float
    vector_compute: float
    memory: float
    data_movement: float
    num_nodes: int

    def __repr__(self) -> str:
        return (
            f"ProgramCost(total={self.total:.1f}, "
            f"nodes={self.num_nodes})"
        )


def scalar_function_cost(function: Function,
                         model: Optional[CostModel] = None) -> float:
    """Model cost of executing the scalar function as-is."""
    model = model or CostModel()
    return sum(model.scalar_cost(inst) for inst in function.entry)


def node_cost(node: VNode, model: CostModel) -> float:
    if isinstance(node, VLoad):
        return model.c_vector_load
    if isinstance(node, VStore):
        return model.c_vector_store
    if isinstance(node, VOp):
        return node.inst.cost
    if isinstance(node, VExtract):
        return model.c_extract
    if isinstance(node, VGather):
        kind = node.classify()
        if kind == "constant":
            return model.c_vector_const
        if kind == "undef":
            return 0.0
        if kind == "multi_source":
            return model.c_two_source_shuffle * 2
        return gather_cost(model, kind, node.num_scalar_sources)
    if isinstance(node, VScalar):
        return model.scalar_cost(node.inst)
    raise TypeError(f"unknown node {node!r}")


def program_cost(program: VectorProgram,
                 model: Optional[CostModel] = None) -> ProgramCost:
    model = model or CostModel()
    scalar = vector = memory = movement = 0.0
    nodes = 0
    for node in program.nodes:
        cost = node_cost(node, model)
        if isinstance(node, VScalar):
            scalar += cost
            if node.inst.opcode != Opcode.GEP:
                nodes += 1
            continue
        nodes += 1
        if isinstance(node, (VLoad, VStore)):
            memory += cost
        elif isinstance(node, VOp):
            vector += cost
        else:
            movement += cost
    total = scalar + vector + memory + movement
    return ProgramCost(total, scalar, vector, memory, movement, nodes)


def speedup(baseline_cost: float, optimized_cost: float) -> float:
    """Model-cycle speedup ratio (>1 means 'optimized' wins)."""
    if optimized_cost <= 0:
        return float("inf")
    return baseline_cost / optimized_cost
