"""Machine model: cost estimation (§6.2) and differential execution of
vector programs against the scalar interpreter."""

from repro.machine.costs import CostModel, classify_gather, gather_cost
from repro.machine.exec import MachineExecError, run_program
from repro.machine.model import (
    ProgramCost,
    node_cost,
    program_cost,
    scalar_function_cost,
    speedup,
)

__all__ = [
    "CostModel",
    "classify_gather",
    "gather_cost",
    "MachineExecError",
    "run_program",
    "ProgramCost",
    "node_cost",
    "program_cost",
    "scalar_function_cost",
    "speedup",
]
