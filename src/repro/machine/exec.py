"""Vector-program interpreter.

Executes the code generator's output against the same :class:`Buffer`
memory the scalar interpreter uses, so correctness of the whole system is
checked differentially: for every kernel and every random input,
``run_function(scalar)`` and ``run_program(vectorized)`` must leave
identical memory.

Compute vector instructions are executed through their VIDL descriptions
(:func:`repro.vidl.interp.execute_inst`), so vector semantics are *by
construction* the semantics the instruction was selected with.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Function
from repro.ir.interp import Buffer, _execute
from repro.ir.values import Argument, Constant
from repro.vectorizer.vector_ir import (
    ElementSource,
    VExtract,
    VGather,
    VLoad,
    VNode,
    VOp,
    VScalar,
    VStore,
    VectorProgram,
)
from repro.vidl.interp import execute_inst


class MachineExecError(RuntimeError):
    """Raised when a vector program performs an undefined operation."""


def run_program(program: VectorProgram,
                arguments: Dict[str, object]) -> None:
    """Execute a vector program; buffers in ``arguments`` are mutated."""
    function: Function = program.function
    scalar_env: Dict[int, object] = {}
    for arg in function.args:
        value = arguments.get(arg.name)
        if value is None:
            raise MachineExecError(f"missing argument {arg.name!r}")
        if arg.type.is_pointer:
            scalar_env[id(arg)] = (value, 0)
        else:
            scalar_env[id(arg)] = value
    vector_env: Dict[int, List[object]] = {}

    for node in program.nodes:
        _step(node, scalar_env, vector_env, arguments)


def _buffer_for(base: Argument, arguments: Dict[str, object]) -> Buffer:
    buffer = arguments.get(base.name)
    if not isinstance(buffer, Buffer):
        raise MachineExecError(f"argument {base.name!r} is not a buffer")
    return buffer


def _step(node: VNode, scalar_env: Dict[int, object],
          vector_env: Dict[int, List[object]],
          arguments: Dict[str, object]) -> None:
    if isinstance(node, VLoad):
        buffer = _buffer_for(node.base, arguments)
        vector_env[id(node)] = [
            buffer.load(node.offset + lane) for lane in range(node.lanes)
        ]
        return
    if isinstance(node, VGather):
        lanes: List[object] = []
        for source in node.sources:
            lanes.append(_resolve_source(source, scalar_env, vector_env))
        vector_env[id(node)] = lanes
        return
    if isinstance(node, VOp):
        inputs = [vector_env[id(op)] for op in node.operands]
        vector_env[id(node)] = _execute_vop(node, inputs)
        return
    if isinstance(node, VStore):
        buffer = _buffer_for(node.base, arguments)
        lanes = vector_env[id(node.source)]
        if len(lanes) != node.lanes:
            raise MachineExecError("vstore lane count mismatch")
        for lane, value in enumerate(lanes):
            if value is None:
                raise MachineExecError("storing an undef lane")
            buffer.store(node.offset + lane, value)
        return
    if isinstance(node, VExtract):
        lanes = vector_env[id(node.source)]
        value = lanes[node.lane]
        if value is None:
            raise MachineExecError("extracting an undef lane")
        scalar_env[id(node.value)] = value
        return
    if isinstance(node, VScalar):
        inst = node.inst
        result = _execute(inst, scalar_env)
        if inst.has_result:
            scalar_env[id(inst)] = result
        return
    raise MachineExecError(f"unknown node {node!r}")


def _execute_vop(node: VOp, inputs):
    """Execute a compute instruction, skipping dead output lanes (their
    operations may consume undef inputs)."""
    from repro.vidl.interp import execute_operation

    desc = node.inst.desc
    if all(node.live_lanes):
        return execute_inst(desc, inputs)
    output: List[object] = []
    for lane_index, lane_op in enumerate(desc.lane_ops):
        if not node.live_lanes[lane_index]:
            output.append(None)
            continue
        args = []
        for ref in lane_op.bindings:
            value = inputs[ref.input_index][ref.lane_index]
            if value is None:
                raise MachineExecError(
                    f"{desc.name}: live lane {lane_index} consumes an "
                    f"undef input lane"
                )
            args.append(value)
        output.append(execute_operation(lane_op.operation, args))
    return output


def _resolve_source(source: ElementSource, scalar_env: Dict[int, object],
                    vector_env: Dict[int, List[object]]):
    if source.kind == "undef":
        return None
    if source.kind == "const":
        return source.value.value  # type: ignore[union-attr]
    if source.kind == "lane":
        return vector_env[id(source.node)][source.lane]
    if source.kind == "scalar":
        value = source.value
        if isinstance(value, Constant):
            return value.value
        try:
            return scalar_env[id(value)]
        except KeyError:
            raise MachineExecError(
                f"scalar element {value!r} not computed before gather"
            )
    raise MachineExecError(f"unknown element source {source.kind!r}")
