"""The LLVM-SLP-style baseline vectorizer (§7's "LLVM").

The baseline reuses the same pack-selection machinery as VeGen but models
LLVM's SLP vectorizer faithfully in its capabilities and blind spots:

* **SIMD instructions only** — lane-isomorphic, elementwise instructions
  (the two SLP assumptions of §3).  Non-SIMD instructions (pmaddwd,
  phadd, packssdw, vpdpbusd, ...) are invisible to it.
* **Special-case addsub support** (§1, §7.1): the alternating fadd/fsub
  and fma/fms patterns LLVM's SLP was hand-extended to handle.  Costs for
  these mirror LLVM's target-independent model — two vector arithmetic
  ops plus a blend — which *overestimates* (§7.4) and is exactly why the
  baseline declines to vectorize complex multiplication (Figure 15).
* **Hand-written fabs knowledge** (§7.1): LLVM vectorizes float absolute
  value with the sign-bit masking trick; the baseline gets dedicated
  ``fabsps/fabspd`` instructions to model that, which VeGen's targets do
  not have (no x86 instruction documents those semantics).
* **Greedy, non-lookahead selection**: beam width 1 (the plain SLP
  heuristic).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.machine.costs import CostModel
from repro.target.isa import (
    TargetDesc,
    TargetInstruction,
    build_instruction,
)
from repro.target.registry import get_target
from repro.target.specs import baseline_fabs_entries
from repro.vectorizer.context import VectorizerConfig
from repro.vectorizer.pipeline import VectorizationResult

#: Instruction families LLVM's SLP special-cases despite not being SIMD.
_ALTERNATING_FAMILIES = ("addsubps", "addsubpd", "fmaddsubps",
                         "fmaddsubpd", "fmsubaddps", "fmsubaddpd")

#: LLVM models the alternating pattern as two vector ops plus a blend; the
#: blend is the overestimated part (§7.4).
_ALTERNATING_COST_OPS = 2
_ALTERNATING_BLEND_COST = 3.0

_baseline_cache: Dict[str, TargetDesc] = {}
_baseline_lock = threading.RLock()


def clear_baseline_cache() -> None:
    """Reset the derived baseline-target cache (cold-build measurement
    companion to :func:`repro.target.registry.clear_caches`)."""
    with _baseline_lock:
        _baseline_cache.clear()


def get_baseline_target(name: str = "avx2") -> TargetDesc:
    """Derive the baseline ("LLVM") target from a VeGen target config."""
    cached = _baseline_cache.get(name)
    if cached is not None:
        return cached
    with _baseline_lock:
        cached = _baseline_cache.get(name)
        if cached is not None:
            return cached
        return _build_baseline_target(name)


def _build_baseline_target(name: str) -> TargetDesc:
    full = get_target(name)
    instructions: List[TargetInstruction] = []
    for inst in full.instructions:
        family = inst.name.rsplit("_", 1)[0]
        if family in _ALTERNATING_FAMILIES:
            # Supported, but priced with LLVM's two-ops-plus-blend model.
            per_op = inst.cost / 2
            inflated = (
                _ALTERNATING_COST_OPS * max(per_op, 1.0)
                + _ALTERNATING_BLEND_COST
            )
            instructions.append(
                TargetInstruction(
                    name=inst.name,
                    desc=inst.desc,
                    match_ops=inst.match_ops,
                    cost=inflated,
                    requires=inst.requires,
                    spec_text=inst.spec_text,
                )
            )
            continue
        if inst.is_simd:
            instructions.append(inst)
    for entry in baseline_fabs_entries():
        if not entry.requires <= full.extensions:
            continue
        built = build_instruction(entry.name, entry.text, entry.requires,
                                  entry.inv_throughput)
        if built is not None:
            instructions.append(built)
    target = TargetDesc(f"baseline-{name}", full.extensions, instructions)
    _baseline_cache[name] = target
    return target


def baseline_vectorize(
    function,
    target: str = "avx2",
    cost_model: Optional[CostModel] = None,
    config: Optional[VectorizerConfig] = None,
    sanitize: bool = False,
) -> VectorizationResult:
    """Vectorize with the LLVM-SLP-style baseline.

    The inflated alternating-pattern costs drive the *decision* (that is
    LLVM's cost-model error, §7.4); the emitted program is then re-priced
    with the true instruction costs, because LLVM's backend lowers the
    blend pattern to the real addsub instruction when the vectorizer does
    emit it.
    """
    from repro.session import VectorizationSession

    session = VectorizationSession(
        target=get_baseline_target(target),
        beam_width=1,
        cost_model=cost_model,
        config=config,
    )
    result = session.vectorize(function)
    full = get_target(target)
    for op in result.program.vector_ops():
        true_inst = full.by_name.get(op.inst.name)
        if true_inst is not None:
            op.inst = true_inst
    from repro.machine.model import program_cost

    result.cost = program_cost(result.program, cost_model or CostModel())
    if sanitize:
        from repro.analysis import SanitizerError, analyze_result, \
            errors_only

        result.diagnostics = analyze_result(
            result, target=get_baseline_target(target)
        )
        errors = errors_only(result.diagnostics)
        if errors:
            raise SanitizerError(errors)
    return result
