"""LLVM-SLP-style baseline vectorizer used for every §7 comparison."""

from repro.baseline.slp_vectorizer import (
    baseline_vectorize,
    clear_baseline_cache,
    get_baseline_target,
)

__all__ = ["baseline_vectorize", "clear_baseline_cache",
           "get_baseline_target"]
